"""Tests for repro.graphs.csr — canonical CSR construction helpers."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    as_csr,
    drop_diagonal,
    empty_csr,
    from_edges,
    is_structurally_symmetric,
    nonzeros_per_col,
    nonzeros_per_row,
    pattern_equal,
)


class TestAsCsr:
    def test_coerces_dense(self):
        M = as_csr(np.eye(3))
        assert sp.issparse(M) and M.format == "csr"
        assert M.dtype == np.float64
        assert M.nnz == 3

    def test_removes_explicit_zeros(self):
        A = sp.csr_matrix((np.array([1.0, 0.0]), (np.array([0, 1]), np.array([1, 0]))), shape=(2, 2))
        assert as_csr(A).nnz == 1

    def test_merges_duplicates(self):
        A = sp.coo_matrix((np.ones(3), ([0, 0, 1], [1, 1, 0])), shape=(2, 2))
        M = as_csr(A)
        assert M.nnz == 2
        assert M[0, 1] == 2.0  # duplicates summed for value matrices

    def test_idempotent(self):
        A = as_csr(sp.random(20, 20, density=0.2, random_state=1))
        B = as_csr(A)
        assert pattern_equal(A, B)
        assert np.allclose(A.data, B.data)

    def test_sorted_indices(self):
        A = as_csr(sp.random(30, 30, density=0.3, random_state=2))
        assert A.has_sorted_indices


class TestFromEdges:
    def test_basic(self):
        M = from_edges([0, 1], [1, 2], (3, 3))
        assert M.nnz == 2
        assert M[0, 1] == 1.0

    def test_duplicates_collapse_to_pattern(self):
        M = from_edges([0, 0, 0], [1, 1, 1], (2, 2))
        assert M.nnz == 1
        assert M[0, 1] == 1.0

    def test_symmetrize(self):
        M = from_edges([0], [1], (3, 3), symmetrize=True)
        assert M[0, 1] == 1.0 and M[1, 0] == 1.0

    def test_explicit_values_summed(self):
        M = from_edges([0, 0], [1, 1], (2, 2), values=[2.0, 3.0])
        assert M[0, 1] == 5.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            from_edges([0, 1], [1], (3, 3))

    def test_empty(self):
        M = from_edges([], [], (4, 4))
        assert M.nnz == 0 and M.shape == (4, 4)


class TestStructure:
    def test_empty_csr(self):
        M = empty_csr(3, 5)
        assert M.shape == (3, 5) and M.nnz == 0

    def test_pattern_equal_ignores_values(self):
        A = from_edges([0, 1], [1, 0], (2, 2), values=[1.0, 2.0])
        B = from_edges([0, 1], [1, 0], (2, 2), values=[9.0, 9.0])
        assert pattern_equal(A, B)

    def test_pattern_equal_shape_mismatch(self):
        assert not pattern_equal(empty_csr(2, 2), empty_csr(3, 3))

    def test_structural_symmetry(self, tiny_matrix):
        assert is_structurally_symmetric(tiny_matrix)
        assert not is_structurally_symmetric(from_edges([0], [1], (2, 2)))
        assert not is_structurally_symmetric(empty_csr(2, 3))

    def test_drop_diagonal(self):
        M = from_edges([0, 1, 1], [0, 1, 0], (2, 2))
        D = drop_diagonal(M)
        assert D.nnz == 1 and D[1, 0] == 1.0

    def test_nnz_per_row_col(self):
        M = from_edges([0, 0, 1], [0, 1, 1], (2, 3))
        assert nonzeros_per_row(M).tolist() == [2, 1]
        assert nonzeros_per_col(M).tolist() == [1, 2, 0]


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64)


class TestProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_from_edges_pattern_is_set_of_pairs(self, data):
        n, rows, cols = data
        M = from_edges(rows, cols, (n, n))
        expected = len({(r, c) for r, c in zip(rows.tolist(), cols.tolist())})
        assert M.nnz == expected
        if M.nnz:
            assert (M.data == 1.0).all()

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetrize_gives_symmetric_pattern(self, data):
        n, rows, cols = data
        M = from_edges(rows, cols, (n, n), symmetrize=True)
        assert is_structurally_symmetric(M)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_row_col_counts_sum_to_nnz(self, data):
        n, rows, cols = data
        M = from_edges(rows, cols, (n, n))
        assert nonzeros_per_row(M).sum() == M.nnz
        assert nonzeros_per_col(M).sum() == M.nnz
