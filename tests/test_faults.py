"""Fault-injection runtime: plans, ABFT detection, recovery, campaigns."""

import math

import numpy as np
import pytest

from repro.bench.harness import layout_for
from repro.runtime import (
    CAB,
    CostLedger,
    DistSparseMatrix,
    FaultConfig,
    FaultPlan,
    MachineModel,
    fault_campaign,
    max_recovery_peers,
    recovery_peers,
    recovery_stats,
    run_with_faults,
)
from repro.runtime.faults import (
    Corruption,
    FailStop,
    Straggler,
    abft_detect_seconds,
    checkpoint_write_seconds,
)


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_from_rates_is_deterministic(self):
        a = FaultPlan.from_rates(16, 200, seed=7, failstop_rate=0.02,
                                 corruption_rate=0.1, straggler_rate=0.05)
        b = FaultPlan.from_rates(16, 200, seed=7, failstop_rate=0.02,
                                 corruption_rate=0.1, straggler_rate=0.05)
        assert a == b
        assert a.as_dict() == b.as_dict()

    def test_different_seeds_differ(self):
        a = FaultPlan.from_rates(16, 200, seed=1, corruption_rate=0.2)
        b = FaultPlan.from_rates(16, 200, seed=2, corruption_rate=0.2)
        assert a != b

    def test_rates_scale_event_counts(self):
        quiet = FaultPlan.from_rates(8, 400, seed=0, failstop_rate=0.01)
        noisy = FaultPlan.from_rates(8, 400, seed=0, failstop_rate=0.2)
        assert len(noisy.failstops) > len(quiet.failstops)

    def test_slowdown_at_combines_by_max(self):
        plan = FaultPlan(4, 10, stragglers=(
            Straggler(rank=1, start=2, duration=3, factor=4.0),
            Straggler(rank=1, start=3, duration=2, factor=8.0),
        ))
        assert plan.slowdown_at(0) is None
        assert plan.slowdown_at(2)[1] == 4.0
        assert plan.slowdown_at(3)[1] == 8.0  # overlapping: max wins
        assert plan.slowdown_at(5) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="rank"):
            FaultPlan(4, 10, failstops=(FailStop(0, 9),))
        with pytest.raises(ValueError, match="iteration"):
            FaultPlan(4, 10, corruptions=(Corruption(12, 0),))
        with pytest.raises(ValueError, match="phase"):
            FaultPlan(4, 10, corruptions=(Corruption(0, 0, phase="gather"),))
        with pytest.raises(ValueError, match="magnitude"):
            FaultPlan(4, 10, corruptions=(Corruption(0, 0, magnitude=0.0),))
        with pytest.raises(ValueError, match="factor"):
            FaultPlan(4, 10, stragglers=(Straggler(0, 0, factor=0.5),))


# ---------------------------------------------------------------------------
# finite-value validation (machine + ledger)
# ---------------------------------------------------------------------------


class TestFiniteValidation:
    @pytest.mark.parametrize("field", ["alpha", "beta", "gamma_flop", "gamma_mem"])
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_machine_rejects_nonfinite(self, field, bad):
        kwargs = dict(name="bad", alpha=1e-6, beta=1e-9,
                      gamma_flop=1e-10, gamma_mem=1e-10)
        kwargs[field] = bad
        with pytest.raises(ValueError, match="finite"):
            MachineModel(**kwargs)

    def test_machine_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            MachineModel(name="bad", alpha=-1e-6, beta=1e-9,
                         gamma_flop=1e-10, gamma_mem=1e-10)

    @pytest.mark.parametrize("bad", [math.nan, math.inf])
    def test_ledger_rejects_nonfinite_seconds(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            CostLedger().add("expand", bad)

    def test_ledger_rejects_negative_seconds(self):
        with pytest.raises(ValueError, match="negative"):
            CostLedger().add("expand", -1.0)


# ---------------------------------------------------------------------------
# ABFT detection guarantees
# ---------------------------------------------------------------------------


class TestAbft:
    @pytest.mark.parametrize("method", ["1d-block", "2d-block", "2d-random"])
    def test_no_false_positives_on_clean_runs(self, small_rmat, method):
        """A fault-free SpMV never trips the checksums, on any layout."""
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, method, 16), CAB)
        eng = dist.engine
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(dist.n)
            y, partials = eng.spmv_with_partials(x)
            assert not eng.abft_check(x, partials, y).detected

    def test_no_false_positives_adversarial_scales(self, small_powerlaw):
        """Still clean with badly scaled inputs (reassociation stress)."""
        dist = DistSparseMatrix(
            small_powerlaw, layout_for(small_powerlaw, "2d-block", 9), CAB
        )
        eng = dist.engine
        rng = np.random.default_rng(1)
        x = rng.standard_normal(dist.n) * np.logspace(-8, 8, dist.n)
        y, partials = eng.spmv_with_partials(x)
        assert not eng.abft_check(x, partials, y).detected

    @pytest.mark.parametrize("phase", ["expand", "compute", "fold"])
    def test_injected_corruption_above_threshold_is_flagged(self, small_rmat, phase):
        """Every injection whose checksum effect exceeds the noise bound
        must be detected — the ABFT guarantee, verified against executed
        numerics rather than assumed."""
        p = 16
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "2d-block", p), CAB)
        plan = FaultPlan(
            nprocs=p, iterations=8, seed=3,
            corruptions=tuple(
                Corruption(t, (3 * t) % p, phase=phase) for t in range(8)
            ),
        )
        res = run_with_faults(dist, plan)
        assert len(res.injections) == 8
        flagged_above = [i for i in res.injections if i.effect > i.threshold]
        assert flagged_above, "injections should land above the noise bound"
        for inj in flagged_above:
            assert inj.detected, (
                f"undetected corruption at iter {inj.iteration} rank {inj.rank} "
                f"({inj.phase}): effect {inj.effect:.3e} > thr {inj.threshold:.3e}"
            )

    def test_detection_triggers_recover_charge(self, small_rmat):
        p = 8
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "2d-block", p), CAB)
        plan = FaultPlan(p, 4, corruptions=(Corruption(1, 2, "compute"),))
        res = run_with_faults(dist, plan)
        if any(i.detected for i in res.injections):
            assert res.ledger.get("recover") > 0.0

    def test_abft_cost_charged_every_iteration(self, small_grid):
        dist = DistSparseMatrix(small_grid, layout_for(small_grid, "2d-block", 4), CAB)
        plan = FaultPlan(4, 20)
        res = run_with_faults(dist, plan)
        per_iter = abft_detect_seconds(dist)
        assert per_iter > 0.0
        assert res.ledger.get("detect") == pytest.approx(20 * per_iter)
        off = run_with_faults(dist, plan, FaultConfig(abft=False))
        assert off.ledger.get("detect") == 0.0


# ---------------------------------------------------------------------------
# stragglers
# ---------------------------------------------------------------------------


class TestStragglers:
    def test_straggler_stretches_modeled_time(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "1d-block", 8), CAB)
        quiet = FaultPlan(8, 10)
        slow = FaultPlan(8, 10, stragglers=(Straggler(0, 0, duration=10, factor=8.0),))
        cfg = FaultConfig(abft=False, checkpoint_interval=0)
        t_quiet = run_with_faults(dist, quiet, cfg).total_seconds
        t_slow = run_with_faults(dist, slow, cfg).total_seconds
        assert t_slow > t_quiet
        # the whole window is stretched, so the gap is substantial
        assert t_slow > 1.5 * t_quiet


# ---------------------------------------------------------------------------
# fail-stop recovery
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_spare_restore_words_are_exact(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "2d-block", 16), CAB)
        f = 5
        rs = recovery_stats(dist, f, "spare")
        expected = 3 * dist.local_blocks[f].nnz + 2 * len(
            dist.vector_map.indices_of(f)
        )
        assert rs.restore_words == expected
        assert rs.resync_words > 0
        assert rs.modeled_seconds > 0.0

    def test_spare_peers_match_plan_peer_set(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "2d-block", 16), CAB)
        for f in range(16):
            assert recovery_stats(dist, f, "spare").peers == recovery_peers(dist, f)

    def test_2d_recovery_bounded_1d_gp_not(self, small_rmat):
        """The acceptance claim at p=64: 2D layouts recover through at most
        pr + pc - 2 peers; 1D-GP of a scale-free graph does not."""
        p, pr, pc = 64, 8, 8
        bound = pr + pc - 2
        for method in ("2d-block", "2d-random"):
            dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, method, p), CAB)
            assert max_recovery_peers(dist) <= bound
            worst = max(
                recovery_stats(dist, f, "spare").peers for f in range(p)
            )
            assert worst <= bound
        dist1d = DistSparseMatrix(small_rmat, layout_for(small_rmat, "1d-gp", p), CAB)
        assert max_recovery_peers(dist1d) > bound

    def test_redistribute_spreads_over_survivors(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "1d-block", 8), CAB)
        rs = recovery_stats(dist, 2, "redistribute")
        assert rs.peers > 0
        assert rs.restore_words == recovery_stats(dist, 2, "spare").restore_words
        with pytest.raises(ValueError, match="survivor"):
            one = DistSparseMatrix(small_rmat, layout_for(small_rmat, "1d-block", 1), CAB)
            recovery_stats(one, 0, "redistribute")

    def test_failstop_charges_detect_and_recover(self, small_rmat):
        p = 8
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "2d-block", p), CAB)
        plan = FaultPlan(p, 10, failstops=(FailStop(7, 3),))
        res = run_with_faults(dist, plan, FaultConfig(checkpoint_interval=4))
        assert res.ledger.get("detect") > 0.0
        assert res.ledger.get("recover") > 0.0
        assert res.ledger.get("checkpoint") > 0.0
        (event,) = [e for e in res.ledger.events if e.kind == "fail-stop"]
        assert event.rank == 3 and event.detected and event.seconds > 0.0

    def test_checkpoint_interval_bounds_rollback(self, small_rmat):
        """A failure right after a checkpoint replays less work than one
        far from it — the interval is what bounds the lost-work term."""
        p = 8
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "2d-block", p), CAB)
        near = FaultPlan(p, 20, failstops=(FailStop(10, 0),))  # 0 lost iters
        far = FaultPlan(p, 20, failstops=(FailStop(19, 0),))  # 9 lost iters
        cfg = FaultConfig(checkpoint_interval=10)
        t_near = run_with_faults(dist, near, cfg).ledger.get("recover")
        t_far = run_with_faults(dist, far, cfg).ledger.get("recover")
        assert t_far > t_near

    def test_checkpoint_write_cost_positive(self, small_grid):
        dist = DistSparseMatrix(small_grid, layout_for(small_grid, "1d-block", 4), CAB)
        assert checkpoint_write_seconds(dist) > 0.0


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_campaign_is_bit_reproducible(self, small_rmat):
        p = 16
        layouts = [layout_for(small_rmat, m, p) for m in ("1d-block", "2d-block")]
        plan = FaultPlan.from_rates(p, 30, seed=11, failstop_rate=0.05,
                                    corruption_rate=0.1, straggler_rate=0.05)
        a = fault_campaign(small_rmat, layouts, plan)
        b = fault_campaign(small_rmat, layouts, plan)
        assert a == b  # dataclass equality: every float bit-identical

    def test_run_is_bit_reproducible(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, layout_for(small_rmat, "2d-block", 16), CAB)
        plan = FaultPlan.from_rates(16, 25, seed=4, failstop_rate=0.08,
                                    corruption_rate=0.2)
        a = run_with_faults(dist, plan)
        b = run_with_faults(dist, plan)
        assert a.total_seconds == b.total_seconds
        assert a.injections == b.injections
        assert a.ledger.events == b.ledger.events
        assert a.ledger.breakdown() == b.ledger.breakdown()

    def test_plan_rank_count_must_match(self, small_grid):
        dist = DistSparseMatrix(small_grid, layout_for(small_grid, "1d-block", 4), CAB)
        with pytest.raises(ValueError, match="ranks"):
            run_with_faults(dist, FaultPlan(8, 5))

    def test_clean_campaign_overhead_is_detection_and_checkpoint_only(self, small_grid):
        layouts = [layout_for(small_grid, "2d-block", 4)]
        (cell,) = fault_campaign(small_grid, layouts, FaultPlan(4, 20))
        assert cell.faults == 0
        assert cell.recover_seconds == 0.0
        assert cell.total_seconds == pytest.approx(
            cell.clean_seconds + cell.detect_seconds + cell.checkpoint_seconds
        )
