"""Checkpoint/restart of the Krylov-Schur eigensolver.

The contract under test: a snapshot taken at a restart boundary, resumed
in a fresh solver (even a fresh process, via the ``.npz`` round-trip),
reaches the *same* eigenpairs as the uninterrupted run — bit-identical,
not merely within tolerance — because the snapshot carries the basis, the
Rayleigh quotient, and the RNG state.
"""

import numpy as np
import pytest

from repro.bench.harness import layout_for
from repro.graphs import normalized_laplacian
from repro.runtime import CAB, DistSparseMatrix
from repro.solvers import Checkpoint, CheckpointConfig, DistOperator, eigsh_dist


@pytest.fixture(scope="module")
def lhat(small_rmat_module):
    return normalized_laplacian(small_rmat_module)


@pytest.fixture(scope="module")
def small_rmat_module():
    from repro.generators import rmat

    return rmat(scale=9, edge_factor=8, seed=7)


def make_op(lhat, nprocs=9, method="2d-block"):
    layout = layout_for(lhat, method, nprocs)
    return DistOperator(DistSparseMatrix(lhat, layout, CAB))


class TestCheckpointRestart:
    def test_roundtrip_matches_uninterrupted_run(self, lhat):
        ref = eigsh_dist(make_op(lhat), k=6, tol=1e-6, seed=3)
        assert ref.converged

        cfg = CheckpointConfig(every=2)
        mid = eigsh_dist(make_op(lhat), k=6, tol=1e-6, seed=3, checkpoint=cfg)
        assert np.array_equal(mid.eigenvalues, ref.eigenvalues)
        assert cfg.latest is not None
        assert 0 < cfg.latest.restart <= ref.restarts

        # resume from the snapshot: seed deliberately wrong to prove the
        # snapshot, not the arguments, determines the continuation
        res = eigsh_dist(make_op(lhat), k=6, tol=1e-6, seed=999, resume=cfg.latest)
        assert np.array_equal(res.eigenvalues, ref.eigenvalues)
        assert np.array_equal(res.eigenvectors, ref.eigenvectors)
        assert np.array_equal(res.residuals, ref.residuals)
        assert res.restarts == ref.restarts
        assert res.matvecs == ref.matvecs  # offset accounting included

    def test_npz_persistence_roundtrip(self, lhat, tmp_path):
        path = tmp_path / "solver.npz"
        cfg = CheckpointConfig(every=2, path=path)
        ref = eigsh_dist(make_op(lhat), k=6, tol=1e-6, seed=3, checkpoint=cfg)
        assert path.exists()

        loaded = Checkpoint.load(path)
        assert loaded.restart == cfg.latest.restart
        res = eigsh_dist(make_op(lhat), k=6, tol=1e-6, resume=loaded)
        assert np.array_equal(res.eigenvalues, ref.eigenvalues)

    def test_checkpoint_cost_charged_to_ledger(self, lhat):
        op = make_op(lhat)
        eigsh_dist(op, k=6, tol=1e-6, seed=3, checkpoint=CheckpointConfig(every=1))
        assert op.ledger.get("checkpoint") > 0.0

    def test_mismatched_config_refused(self, lhat):
        cfg = CheckpointConfig(every=1)
        eigsh_dist(make_op(lhat), k=6, tol=1e-6, seed=3, checkpoint=cfg)
        with pytest.raises(ValueError, match="refusing to resume"):
            eigsh_dist(make_op(lhat), k=5, tol=1e-6, resume=cfg.latest)
        with pytest.raises(ValueError, match="does not fit"):
            eigsh_dist(make_op(lhat), k=6, tol=1e-6, m=40, resume=cfg.latest)

    def test_block_solver_rejects_checkpointing(self, lhat):
        with pytest.raises(ValueError, match="block_size=1"):
            eigsh_dist(make_op(lhat), k=4, block_size=2,
                       checkpoint=CheckpointConfig())

    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="interval"):
            CheckpointConfig(every=0)
