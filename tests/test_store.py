"""The compiled-engine artifact store: identity, atomicity, invalidation.

The contracts under test:

* **round-trip identity** — an engine reconstructed from its artifact
  (zero-copy mmap path included) is bit-identical through ``spmv``,
  ``spmm``, and the ABFT checksum machinery;
* **corruption safety** — a damaged or truncated artifact is a clean
  miss (rebuild), never a crash or a wrong answer, and a save
  atomically replaces it;
* **concurrency** — racing writers of the same key never leave a torn
  artifact visible to readers;
* **invalidation** — artifacts with a different schema stamp are stale
  misses, so engines serialized by older code are rebuilt, not
  mis-loaded;
* **residency budget** — the lazy ABFT operators growing an admitted
  engine trigger a byte-budget re-check, so ``max_bytes`` holds even
  for footprint that did not exist at admission time.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.layouts import make_layout
from repro.runtime import DistSparseMatrix, SpmvEngine
from repro.runtime.store import (
    ARTIFACT_SCHEMA,
    EngineKey,
    EngineStore,
    StoreVerifyError,
    default_store_dir,
    matrix_hash,
)
from repro.serve.residency import EngineResidency, ResidentEngine

PROCS = 8


@pytest.fixture(scope="module")
def compiled(small_rmat):
    """One compiled engine + its key, shared across the module."""
    layout = make_layout("2d-random", small_rmat, PROCS, seed=0)
    dist = DistSparseMatrix(small_rmat, layout)
    key = EngineKey(matrix_hash(small_rmat), "2d-random", PROCS, 0)
    return small_rmat, dist.engine, key


def _fresh_engine(A, seed=0):
    layout = make_layout("2d-random", A, PROCS, seed=0)
    engine = DistSparseMatrix(A, layout).engine
    return engine, EngineKey(matrix_hash(A), "2d-random", PROCS, seed)


class TestEngineKey:
    def test_str_matches_partition_cache_form(self):
        key = EngineKey("a" * 12, "2d-gp", 16, 3)
        assert str(key) == "aaaaaaaaaaaa_2d-gp_k16_s3"

    def test_variant_suffix_disambiguates_nested(self):
        direct = EngineKey("a" * 12, "2d-gp", 16, 0)
        nested = EngineKey("a" * 12, "2d-gp", 16, 0, "n64")
        assert str(nested) == str(direct) + "_n64"
        assert direct != nested

    def test_matrix_hash_is_structural(self, small_rmat):
        h = matrix_hash(small_rmat)
        assert len(h) == 12
        assert matrix_hash(small_rmat) == h
        B = small_rmat.copy()
        B.data = B.data * 2.0  # values don't enter the structure hash
        assert matrix_hash(B) == h

    def test_default_store_dir_honors_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_STORE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_store_dir() == tmp_path / "engines"
        monkeypatch.setenv("REPRO_ENGINE_STORE_DIR", str(tmp_path / "x"))
        assert default_store_dir() == tmp_path / "x"


class _Tampered:
    """Engine whose ``to_arrays`` disagrees with its spmv — must not publish."""

    def __init__(self, engine, arrays):
        self._engine = engine
        self._arrays = arrays

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def to_arrays(self):
        return self._arrays


class TestRoundTrip:
    def test_to_from_arrays_bit_identical(self, compiled, rng):
        A, engine, _ = compiled
        clone = SpmvEngine.from_arrays(engine.to_arrays())
        x = rng.standard_normal(A.shape[0])
        assert np.array_equal(engine.spmv(x), clone.spmv(x))

    def test_mmap_load_spmv_spmm_abft(self, compiled, tmp_path, rng):
        A, engine, key = compiled
        store = EngineStore(tmp_path)
        store.save(key, engine)
        loaded = store.load(key)
        assert loaded is not None and loaded.mmapped
        x = rng.standard_normal(A.shape[0])
        X = rng.standard_normal((A.shape[0], 3))
        assert np.array_equal(engine.spmv(x), loaded.engine.spmv(x))
        assert np.array_equal(engine.spmm(X), loaded.engine.spmm(X))
        # the ABFT operators rebuild from the mmapped CSR and stay clean
        y, partials = loaded.engine.spmv_with_partials(x)
        assert np.array_equal(y, engine.spmv(x))
        assert not loaded.engine.abft_check(x, partials, y).detected
        assert loaded.engine.abft_bytes > 0
        # injected corruption is still caught through the loaded engine
        bad = partials.copy()
        bad[0] += 1e3
        assert loaded.engine.abft_check(x, bad).detected
        assert store.counters["hits"] == 1
        assert store.counters["mmap_loads"] == 1

    def test_loaded_operators_are_readonly_views(self, compiled, tmp_path):
        """Zero-copy loads hand out views the kernels must never mutate."""
        _, engine, key = compiled
        store = EngineStore(tmp_path)
        store.save(key, engine)
        loaded = store.load(key)
        assert loaded.mmapped
        with pytest.raises((ValueError, RuntimeError)):
            loaded.engine._local.data[0] = 99.0

    def test_members_are_stored_uncompressed(self, compiled, tmp_path):
        """The zero-copy reader depends on ZIP_STORED members."""
        _, engine, key = compiled
        store = EngineStore(tmp_path)
        path = store.save(key, engine)
        with zipfile.ZipFile(path) as zf:
            assert all(i.compress_type == zipfile.ZIP_STORED for i in zf.infolist())

    def test_meta_carries_key_and_extras(self, compiled, tmp_path):
        _, engine, key = compiled
        store = EngineStore(tmp_path)
        store.save(key, engine, extra_meta={"matrix": "m", "cell_metrics": {"a": 1}})
        meta = store.load_meta(key)
        assert meta["key"] == str(key)
        assert meta["schema"] == ARTIFACT_SCHEMA
        assert meta["cell_metrics"] == {"a": 1}
        assert meta["n"] == engine.n

    def test_verify_rejects_broken_serialization(self, compiled, tmp_path):
        _, engine, key = compiled
        store = EngineStore(tmp_path)
        arrays = engine.to_arrays()
        arrays["local_data"] = arrays["local_data"].copy()
        arrays["local_data"][0] += 1.0
        with pytest.raises(StoreVerifyError):
            store.save(key, _Tampered(engine, arrays))
        assert not store.path(key).exists()  # nothing published
        assert not list(Path(tmp_path).glob("*.tmp-*"))  # no debris


class TestCorruption:
    def _saved(self, compiled, tmp_path):
        _, engine, key = compiled
        store = EngineStore(tmp_path)
        path = store.save(key, engine)
        return store, key, path

    def test_flipped_byte_is_a_miss(self, compiled, tmp_path):
        store, key, path = self._saved(compiled, tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.load(key) is None
        assert store.counters["corrupt"] == 1

    def test_truncation_is_a_miss(self, compiled, tmp_path):
        store, key, path = self._saved(compiled, tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        assert store.load(key) is None
        assert store.counters["corrupt"] == 1

    def test_rebuild_atomically_replaces_damage(self, compiled, tmp_path):
        _, engine, key = compiled
        store, _, path = self._saved(compiled, tmp_path)
        path.write_bytes(b"garbage")
        assert store.load(key) is None  # clean miss, no crash
        store.save(key, engine)  # the rebuild path
        assert store.load(key) is not None
        assert not list(Path(tmp_path).glob("*.tmp-*"))

    def test_stale_schema_is_a_miss_not_a_misload(self, compiled, tmp_path):
        store, key, path = self._saved(compiled, tmp_path)
        # rewrite the meta member with a bumped schema, keeping the zip valid
        with np.load(path) as z:
            members = {k: z[k] for k in z.files}
        meta = json.loads(members["meta"].tobytes().decode())
        meta["schema"] = ARTIFACT_SCHEMA + 1
        members["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy()
        with open(path, "wb") as f:
            np.savez(f, **members)
        assert store.load(key) is None
        assert store.load_meta(key) is None
        assert store.counters["stale"] == 1
        assert store.entries()[0]["status"] == "stale"

    def test_entries_and_evict(self, compiled, tmp_path):
        store, key, _ = self._saved(compiled, tmp_path)
        entries = store.entries()
        assert [e["key"] for e in entries] == [str(key)]
        assert entries[0]["status"] == "ok"
        assert store.evict(key)
        assert not store.evict(key)  # already gone
        assert store.entries() == []
        assert store.clear() == 0


_WRITER_SCRIPT = """
import sys
import scipy.sparse as sp
from repro.layouts import make_layout
from repro.runtime import DistSparseMatrix
from repro.runtime.store import EngineKey, EngineStore, matrix_hash

mtx_path, store_dir, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])
A = sp.load_npz(mtx_path)
engine = DistSparseMatrix(A, make_layout("2d-random", A, {procs}, seed=0)).engine
store = EngineStore(store_dir)
key = EngineKey(matrix_hash(A), "2d-random", {procs}, 0)
for _ in range(reps):
    store.save(key, engine)
"""


class TestConcurrency:
    def test_racing_writers_never_tear(self, compiled, tmp_path):
        import scipy.sparse as sp

        A, engine, key = compiled
        mtx = tmp_path / "a.npz"
        sp.save_npz(mtx, A)
        store_dir = tmp_path / "store"
        script = _WRITER_SCRIPT.format(procs=PROCS)
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(mtx), str(store_dir), "3"],
                env=os.environ.copy(),
            )
            for _ in range(3)
        ]
        reader = EngineStore(store_dir)
        x = np.random.default_rng(5).standard_normal(A.shape[0])
        want = engine.spmv(x)
        # hammer the read path while the writers race on the same key
        while any(w.poll() is None for w in writers):
            loaded = reader.load(key)
            if loaded is not None:
                assert np.array_equal(loaded.engine.spmv(x), want)
        assert all(w.wait(timeout=120) == 0 for w in writers)
        loaded = reader.load(key)
        assert loaded is not None
        assert np.array_equal(loaded.engine.spmv(x), want)
        assert reader.counters["corrupt"] == 0
        assert not list(store_dir.glob("*.tmp-*"))


class TestAbftBudget:
    """The residency byte budget under lazy ABFT materialization."""

    def _admit(self, A, seed, residency):
        engine, key = _fresh_engine(A, seed)
        entry = ResidentEngine(key=key, matrix="m", dist=None, engine=engine)
        residency.admit(entry)
        return entry

    @staticmethod
    def _materialize_abft(entry, seed=0):
        x = np.random.default_rng(seed).standard_normal(entry.engine.n)
        _, partials = entry.engine.spmv_with_partials(x)
        entry.engine.abft_check(x, partials)

    def test_abft_bytes_zero_until_materialized(self, small_rmat):
        engine, _ = _fresh_engine(small_rmat)
        assert engine.abft_bytes == 0
        base = engine.nbytes
        engine._abft_operators()
        assert engine.abft_bytes > 0
        assert engine.nbytes == base + engine.abft_bytes

    def test_materialization_triggers_recheck_and_eviction(self, small_rmat):
        res = EngineResidency(max_engines=10)
        first = self._admit(small_rmat, 0, res)
        second = self._admit(small_rmat, 1, res)
        # budget fits both engines now, but not after one ABFT growth
        res.max_bytes = res.resident_bytes() + 1
        self._materialize_abft(second)
        assert res.abft_rechecks == 1
        assert res.abft_evictions == 1
        assert second.key in res  # the growing entry is never the victim
        assert first.key not in res
        assert res.resident_bytes() <= res.max_bytes

    def test_budget_never_exceeded_after_growth(self, small_rmat):
        res = EngineResidency(max_engines=10)
        entries = [self._admit(small_rmat, s, res) for s in range(3)]
        res.max_bytes = res.resident_bytes() + 1
        self._materialize_abft(entries[-1])
        # invariant: over-budget residency only survives as a single entry
        assert res.resident_bytes() <= res.max_bytes or len(res) == 1
        assert entries[-1].key in res
        assert res.abft_evictions >= 1

    def test_no_budget_means_recheck_is_a_noop(self, small_rmat):
        res = EngineResidency(max_engines=10, max_bytes=None)
        a = self._admit(small_rmat, 0, res)
        b = self._admit(small_rmat, 1, res)
        self._materialize_abft(b)
        assert res.abft_rechecks == 1
        assert res.abft_evictions == 0
        assert a.key in res and b.key in res

    def test_evicted_entries_are_disarmed(self, small_rmat):
        res = EngineResidency(max_engines=10, max_bytes=None)
        a = self._admit(small_rmat, 0, res)
        res.evict(a.key)
        assert a.engine.abft_listener is None
        # late materialization on the evicted engine must not touch residency
        self._materialize_abft(a)
        assert res.abft_rechecks == 0

    def test_as_dict_surfaces_abft_bytes(self, small_rmat):
        res = EngineResidency(max_engines=10)
        a = self._admit(small_rmat, 0, res)
        assert a.as_dict()["abft_bytes"] == 0
        self._materialize_abft(a)
        assert a.as_dict()["abft_bytes"] == a.engine.abft_bytes > 0

    def test_abft_drains_evicted_batcher(self, small_rmat):
        class _Batcher:
            drained = False

            def drain(self):
                self.drained = True

        res = EngineResidency(max_engines=10)
        victim = self._admit(small_rmat, 0, res)
        victim.batcher = _Batcher()
        grower = self._admit(small_rmat, 1, res)
        res.max_bytes = res.resident_bytes() + 1
        self._materialize_abft(grower)
        assert victim.key not in res
        assert victim.batcher.drained
