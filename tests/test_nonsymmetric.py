"""Nonsymmetric-matrix support — the paper's stated future-work extension.

"Although our test matrices were structurally symmetric, our approach
extends to nonsymmetric matrices." The runtime and Algorithm 2 make no
symmetry assumption (rows and columns are partitioned identically via
rpart; a_ij may exist without a_ji); the partitioners operate on the
symmetrised pattern, exactly what ParMETIS/Zoltan would be fed. These
tests pin that support down.
"""

import numpy as np
import pytest

from repro.generators.rmat import rmat_edges
from repro.graphs import from_edges, is_structurally_symmetric
from repro.layouts import make_layout, process_grid_shape
from repro.runtime import DistSparseMatrix, comm_stats
from repro.solvers import pagerank


@pytest.fixture(scope="module")
def directed_graph():
    """A directed (structurally nonsymmetric) R-MAT web-like graph."""
    rows, cols = rmat_edges(9, 6, seed=11)
    keep = rows != cols
    A = from_edges(rows[keep], cols[keep], (512, 512))
    assert not is_structurally_symmetric(A)
    return A


METHODS = ["1d-block", "1d-random", "1d-gp", "2d-block", "2d-random", "2d-gp"]


class TestNonsymmetricSpMV:
    @pytest.mark.parametrize("method", METHODS)
    def test_spmv_exact(self, directed_graph, method):
        lay = make_layout(method, directed_graph, 6, seed=1)
        dist = DistSparseMatrix(directed_graph, lay)
        x = np.random.default_rng(2).standard_normal(512)
        assert np.abs(dist.spmv(x) - directed_graph @ x).max() < 1e-10

    def test_message_bound_still_holds(self, directed_graph):
        p = 16
        pr, pc = process_grid_shape(p)
        lay = make_layout("2d-gp", directed_graph, p, seed=0)
        dist = DistSparseMatrix(directed_graph, lay)
        assert comm_stats(dist).max_messages <= pr + pc - 2

    def test_partitioner_accepts_directed_input(self, directed_graph):
        """The partitioners symmetrise internally (A + A^T), as the paper
        does for its unsymmetric inputs."""
        lay = make_layout("1d-gp", directed_graph, 4, seed=0)
        assert len(np.unique(lay.vector_part)) == 4

    def test_transpose_spmv_consistent(self, directed_graph):
        """Distributing A^T and multiplying equals (A^T) @ x — i.e. nothing
        in the runtime silently symmetrises values."""
        At = directed_graph.T.tocsr()
        lay = make_layout("2d-random", At, 4, seed=3)
        dist = DistSparseMatrix(At, lay)
        x = np.random.default_rng(4).standard_normal(512)
        assert np.abs(dist.spmv(x) - At @ x).max() < 1e-10


class TestNonsymmetricPageRank:
    def test_pagerank_on_directed_graph(self, directed_graph):
        """PageRank's link matrix is inherently nonsymmetric."""
        lay = make_layout("2d-gp", directed_graph, 4, seed=0)
        res = pagerank(directed_graph, lay, tol=1e-10)
        assert res.converged
        assert np.isclose(res.scores.sum(), 1.0)

    def test_layouts_agree_on_directed_pagerank(self, directed_graph):
        scores = []
        for m in ("1d-block", "2d-gp"):
            lay = make_layout(m, directed_graph, 4, seed=0)
            scores.append(pagerank(directed_graph, lay, tol=1e-12).scores)
        assert np.abs(scores[0] - scores[1]).max() < 1e-9
