"""Tests for repro.layouts — the six data distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layouts import (
    LAYOUT_NAMES,
    Layout,
    block_rpart,
    canonical_name,
    cartesian_layout,
    make_layout,
    nonzero_partition,
    oned_layout,
    process_grid_shape,
    random_rpart,
)


class TestProcessGrid:
    @pytest.mark.parametrize("p,expected", [(1, (1, 1)), (4, (2, 2)), (16, (4, 4)),
                                            (64, (8, 8)), (12, (3, 4)), (6, (2, 3))])
    def test_most_square(self, p, expected):
        assert process_grid_shape(p) == expected

    def test_prime(self):
        assert process_grid_shape(7) == (1, 7)

    def test_invalid(self):
        with pytest.raises(ValueError):
            process_grid_shape(0)


class TestRpartProviders:
    def test_block_contiguous_and_balanced(self):
        r = block_rpart(10, 3)
        assert (np.diff(r) >= 0).all()  # non-decreasing = contiguous blocks
        counts = np.bincount(r, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_block_p_greater_than_n(self):
        r = block_rpart(2, 5)
        assert len(np.unique(r)) == 2

    def test_random_covers_parts(self):
        r = random_rpart(5000, 16, seed=1)
        assert len(np.unique(r)) == 16
        counts = np.bincount(r, minlength=16)
        assert counts.max() / counts.mean() < 1.3

    def test_random_deterministic(self):
        assert np.array_equal(random_rpart(100, 4, seed=2), random_rpart(100, 4, seed=2))

    def test_validation(self):
        with pytest.raises(ValueError):
            block_rpart(5, 0)
        with pytest.raises(ValueError):
            random_rpart(5, 0)


class TestAlgorithm2:
    """nonzero_partition IS the paper's Algorithm 2 — check it literally."""

    def test_phi_psi_formulas(self):
        rpart = np.arange(12, dtype=np.int64) % 6  # p = 6 = 2 x 3
        procrow, proccol = nonzero_partition(rpart, 2, 3)
        assert np.array_equal(procrow, rpart % 2)  # phi(k) = rpart(k) mod pr
        assert np.array_equal(proccol, rpart // 2)  # psi(k) = rpart(k) div pr

    def test_swapped(self):
        rpart = np.arange(12, dtype=np.int64) % 6
        procrow, proccol = nonzero_partition(rpart, 2, 3, swap=True)
        assert np.array_equal(procrow, rpart // 3)
        assert np.array_equal(proccol, rpart % 3)

    def test_out_of_range_rpart(self):
        with pytest.raises(ValueError, match="rpart"):
            nonzero_partition(np.array([6]), 2, 3)

    def test_diagonal_rank_equals_rpart_in_fixed_orientation(self):
        rpart = np.random.default_rng(0).integers(0, 6, 50)
        procrow, proccol = nonzero_partition(rpart, 2, 3)
        assert np.array_equal(procrow + proccol * 2, rpart)


class TestLayoutObject:
    def test_oned_properties(self):
        rpart = np.array([0, 1, 2, 0], dtype=np.int64)
        lay = oned_layout("1D-X", rpart, 3)
        assert lay.is_one_dimensional()
        assert lay.max_messages_bound() == 2
        assert np.array_equal(lay.nonzero_owner(np.array([0, 3]), np.array([2, 1])),
                              np.array([0, 0]))  # 1D: row owner

    def test_grid_mismatch_raises(self):
        with pytest.raises(ValueError, match="grid"):
            Layout("x", 4, 2, 3, np.zeros(2, dtype=np.int64),
                   np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64))

    def test_out_of_range_vector_part(self):
        with pytest.raises(ValueError, match="vector_part"):
            Layout("x", 2, 2, 1, np.array([0, 5]), np.array([0, 1]), np.array([0, 0]))


class TestFactory:
    @pytest.mark.parametrize("method", ["1d-block", "1d-random", "2d-block", "2d-random"])
    def test_cheap_methods(self, small_rmat, method):
        lay = make_layout(method, small_rmat, 8, seed=1)
        assert lay.nprocs == 8
        assert lay.name == canonical_name(method)
        if method.startswith("1d"):
            assert lay.pc == 1
        else:
            assert lay.pr * lay.pc == 8

    def test_partitioned_methods(self, small_powerlaw):
        lay = make_layout("2d-gp", small_powerlaw, 4, seed=0)
        assert lay.name == "2D-GP"
        assert lay.pr == lay.pc == 2

    def test_precomputed_rpart_respected(self, small_rmat):
        rpart = random_rpart(small_rmat.shape[0], 4, seed=9)
        lay = make_layout("2d-gp", small_rmat, 4, rpart=rpart)
        assert np.array_equal(lay.vector_part, rpart)

    def test_rpart_length_mismatch(self, small_rmat):
        with pytest.raises(ValueError, match="rpart length"):
            make_layout("1d-gp", small_rmat, 4, rpart=np.zeros(3, dtype=np.int64))

    def test_unknown_method(self, small_rmat):
        with pytest.raises(ValueError, match="unknown layout"):
            make_layout("3d-torus", small_rmat, 4)

    def test_all_names_have_display(self):
        for name in LAYOUT_NAMES:
            assert canonical_name(name)


class TestCartesianOrientation:
    def test_best_picks_lower_imbalance(self, small_rmat):
        rpart = block_rpart(small_rmat.shape[0], 4)
        best = cartesian_layout("2D-X", small_rmat, rpart, 2, 2, orientation="best")
        from repro.layouts import nonzero_balance

        fixed = nonzero_partition(rpart, 2, 2, swap=False)
        swapped = nonzero_partition(rpart, 2, 2, swap=True)
        bal_best = nonzero_balance(small_rmat, best.procrow, best.proccol, 2, 2)
        bal_f = nonzero_balance(small_rmat, *fixed, 2, 2)
        bal_s = nonzero_balance(small_rmat, *swapped, 2, 2)
        assert bal_best == min(bal_f, bal_s)

    def test_invalid_orientation(self, small_rmat):
        rpart = block_rpart(small_rmat.shape[0], 4)
        with pytest.raises(ValueError, match="orientation"):
            cartesian_layout("x", small_rmat, rpart, 2, 2, orientation="diagonal")

    def test_vector_collocated_with_diagonal(self, small_rmat):
        """Invariant: x_k lives at grid process (phi(k), psi(k))."""
        rpart = random_rpart(small_rmat.shape[0], 6, seed=2)
        for orient in ("fixed", "swapped"):
            lay = cartesian_layout("x", small_rmat, rpart, 2, 3, orientation=orient)
            assert np.array_equal(lay.vector_part, lay.procrow + lay.proccol * lay.pr)


@given(
    n=st.integers(4, 60),
    pr=st.integers(1, 4),
    pc=st.integers(1, 4),
    seed=st.integers(0, 10),
)
@settings(max_examples=60, deadline=None)
def test_property_message_bound_structural(n, pr, pc, seed):
    """All vector entries owned by one rank share one grid column (the
    structural fact behind the pr+pc-2 message bound of section 3.2)."""
    p = pr * pc
    rpart = random_rpart(n, p, seed=seed)
    procrow, proccol = nonzero_partition(rpart, pr, pc)
    owner_rank = procrow + proccol * pr
    for q in range(p):
        cols = np.unique(proccol[owner_rank == q])
        assert len(cols) <= 1
