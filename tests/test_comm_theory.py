"""Theory cross-checks between the partitioning models and the runtime.

The paper (section 2.2) leans on a classical exactness result: "hypergraph
partitioning can be used to accurately model communication volume". These
tests verify our stack realises the theory *exactly* — the column-net
connectivity-1 cut of a row partition equals the expand volume the runtime
actually schedules, message bounds match the analysis of section 3.2, and
1D/2D layouts built from the same rpart move the volumes the paper's
analysis says they move.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.generators import rmat
from repro.layouts import make_layout, oned_layout, random_rpart, process_grid_shape
from repro.partitioning import Hypergraph
from repro.runtime import DistSparseMatrix, comm_stats


class TestHypergraphExactness:
    """Column-net connectivity-1 == expand volume for 1D layouts."""

    @given(scale=st.integers(4, 7), p=st.integers(2, 8), seed=st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_conn_minus_one_equals_expand_volume(self, scale, p, seed):
        A = rmat(scale, 4, seed=seed)
        rpart = random_rpart(A.shape[0], p, seed=seed + 1)
        layout = oned_layout("1D", rpart, p)
        dist = DistSparseMatrix(A, layout)
        stats = comm_stats(dist)

        hg = Hypergraph.from_matrix_column_net(A)
        cut = hg.cut_connectivity_minus_one(rpart, p)
        assert stats.expand_volume == cut
        assert stats.fold_volume == 0  # 1D: no fold phase

    def test_graph_edgecut_upper_bounds_volume(self, small_powerlaw):
        """The edge cut over-counts volume (multiple cut edges to one part
        cost one transfer) — why hypergraphs are the exact model."""
        from repro.partitioning import PartGraph

        p = 6
        rpart = random_rpart(small_powerlaw.shape[0], p, seed=3)
        g = PartGraph.from_matrix(small_powerlaw, "unit")
        layout = oned_layout("1D", rpart, p)
        stats = comm_stats(DistSparseMatrix(small_powerlaw, layout))
        assert stats.expand_volume <= 2 * g.edgecut(rpart)


class TestSection32Analysis:
    """The analytic properties claimed in the paper's section 3.2."""

    @given(scale=st.integers(4, 7), pr=st.integers(2, 4), pc=st.integers(2, 4),
           seed=st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_message_bound_any_rpart(self, scale, pr, pc, seed):
        """Number of messages per process is pr + pc - 2 — for ANY rpart."""
        A = rmat(scale, 4, seed=seed)
        p = pr * pc
        lay = make_layout("2d-random", A, p, seed=seed, grid=(pr, pc))
        stats = comm_stats(DistSparseMatrix(A, lay))
        assert stats.max_messages <= pr + pc - 2

    def test_vector_balance_equals_1d(self, small_powerlaw):
        """'The load balance in the vector is the same as for the 1D
        partitioning method' — rpart owns the vector in both."""
        p = 8
        rpart = random_rpart(small_powerlaw.shape[0], p, seed=1)
        one = make_layout("1d-gp", small_powerlaw, p, rpart=rpart)
        two = make_layout("2d-gp", small_powerlaw, p, rpart=rpart)
        d1 = DistSparseMatrix(small_powerlaw, one)
        d2 = DistSparseMatrix(small_powerlaw, two)
        assert d1.vector_map.imbalance() == d2.vector_map.imbalance()

    def test_2d_from_same_rpart_changes_messages_not_rows(self, small_powerlaw):
        """Algorithm 1 keeps the row/vector assignment of the 1D method and
        re-partitions only the edges: same vector map, fewer messages."""
        p = 16
        rpart = random_rpart(small_powerlaw.shape[0], p, seed=2)
        one = DistSparseMatrix(small_powerlaw, make_layout("1d-gp", small_powerlaw, p, rpart=rpart))
        two = DistSparseMatrix(small_powerlaw, make_layout("2d-gp", small_powerlaw, p, rpart=rpart))
        assert np.array_equal(one.vector_map.owner, two.vector_map.owner)
        s1, s2 = comm_stats(one), comm_stats(two)
        pr, pc = process_grid_shape(p)
        assert s2.max_messages <= pr + pc - 2 < s1.max_messages

    def test_diagonal_entries_live_with_vector(self, small_powerlaw):
        """'We desire a matrix distribution in which the diagonal entries
        are spread among all p processes' — a_kk is owned by x_k's owner."""
        import scipy.sparse as sp

        A = small_powerlaw + sp.identity(small_powerlaw.shape[0], format="csr")
        lay = make_layout("2d-random", A, 6, seed=4)
        diag_ranks = lay.nonzero_owner(
            np.arange(A.shape[0]), np.arange(A.shape[0])
        )
        assert np.array_equal(diag_ranks, lay.vector_part)
