"""Tests for the machine model, cost ledger and distributed vector space."""

import numpy as np
import pytest

from repro.runtime import CAB, HOPPER, ZERO_COMM, CostLedger, DistVectorSpace, Map, MachineModel
from repro.runtime.trace import SPMV_PHASES


class TestMachineModel:
    def test_presets_sane(self):
        for m in (CAB, HOPPER):
            assert m.alpha > 0 and m.beta > 0 and m.gamma_flop > 0

    def test_negative_param_rejected(self):
        with pytest.raises(ValueError):
            MachineModel("bad", alpha=-1, beta=0, gamma_flop=0, gamma_mem=0)

    def test_message_time(self):
        assert np.isclose(CAB.message_time(100), CAB.alpha + 100 * CAB.beta)

    def test_allreduce_log_p(self):
        assert CAB.allreduce_time(1) == 0.0
        assert np.isclose(CAB.allreduce_time(8), 3 * (CAB.alpha + CAB.beta))
        assert CAB.allreduce_time(9) > CAB.allreduce_time(8)

    def test_zero_comm(self):
        assert ZERO_COMM.message_time(1000) == 0.0


class TestCostLedger:
    def test_accumulates(self):
        led = CostLedger()
        led.add("expand", 1.0)
        led.add("expand", 0.5)
        led.add("fold", 2.0)
        assert led.get("expand") == 1.5
        assert led.total() == 3.5

    def test_spmv_total_only_counts_spmv_phases(self):
        led = CostLedger()
        for ph in SPMV_PHASES:
            led.add(ph, 1.0)
        led.add("vector-ops", 10.0)
        assert led.spmv_total() == 4.0
        assert led.total() == 14.0

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            CostLedger().add("x", -1.0)

    def test_merge_and_reset(self):
        a, b = CostLedger(), CostLedger()
        a.add("x", 1.0)
        b.add("x", 2.0)
        a.merge(b)
        assert a.get("x") == 3.0
        a.reset()
        assert a.total() == 0.0


class TestDistVectorSpace:
    def _space(self, n=100, p=4, seed=0):
        owner = np.random.default_rng(seed).integers(0, p, n)
        led = CostLedger()
        return DistVectorSpace(Map(owner, p), CAB, led), led

    def test_numerics(self, rng):
        space, _ = self._space()
        x, y = rng.standard_normal(100), rng.standard_normal(100)
        assert np.isclose(space.dot(x, y), x @ y)
        assert np.isclose(space.norm(x), np.linalg.norm(x))
        assert np.allclose(space.axpy(2.0, x, y), 2 * x + y)
        assert np.allclose(space.scale(3.0, x), 3 * x)
        B = rng.standard_normal((100, 5))
        assert np.allclose(space.multi_dot(B, x), B.T @ x)
        c = rng.standard_normal(5)
        assert np.allclose(space.multi_axpy(B, c, x), x - B @ c)
        S = rng.standard_normal((5, 3))
        assert np.allclose(space.gemm(B, S), B @ S)

    def test_dot_charges_stream_plus_allreduce(self, rng):
        space, led = self._space()
        x = rng.standard_normal(100)
        space.dot(x, x)
        max_local = space.map.counts().max()
        expected = CAB.gamma_mem * 2 * max_local + CAB.allreduce_time(4)
        assert np.isclose(led.get("vector-ops"), expected)

    def test_cost_scales_with_vector_imbalance(self, rng):
        """The Table-5 mechanism: imbalanced maps slow dense ops down."""
        n, p = 1000, 4
        balanced = Map(np.arange(n) % p, p)
        skewed_owner = np.zeros(n, dtype=np.int64)
        skewed_owner[: n // 10] = np.arange(n // 10) % (p - 1) + 1
        skewed = Map(skewed_owner, p)  # rank 0 owns 90%
        costs = []
        x = rng.standard_normal(n)
        for vmap in (balanced, skewed):
            led = CostLedger()
            DistVectorSpace(vmap, ZERO_COMM, led).axpy(1.0, x, x)
            costs.append(led.total())
        assert costs[1] > 3 * costs[0]

    def test_default_ledger_created(self):
        space = DistVectorSpace(Map(np.zeros(10, dtype=np.int64), 1), CAB)
        space.norm(np.ones(10))
        assert space.ledger.total() > 0
