"""Tests for multilevel bisection, recursive bisection and balance repair."""

import numpy as np
import pytest

from repro.partitioning import (
    PartGraph,
    derive_nested_partition,
    multilevel_bisect,
    partition_quality,
    recursive_bisection,
)
from repro.partitioning.kway import kway_balance_refine


class TestMultilevelBisect:
    def test_grid_bisection_quality(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = multilevel_bisect(g, seed=0)
        # optimal straight cut of a 24x24 grid is 24 edges
        assert g.edgecut(part) <= 2 * 24
        assert g.imbalance(part, 2)[0] < 1.1

    def test_uneven_targets(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = multilevel_bisect(g, target_fracs=(0.25, 0.75), seed=0)
        w0 = g.vwgt[part == 0, 0].sum() / g.total_weight()[0]
        assert abs(w0 - 0.25) < 0.08

    def test_bad_targets_raise(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        with pytest.raises(ValueError, match="sum to 1"):
            multilevel_bisect(g, target_fracs=(0.5, 0.6))

    def test_trivial_graphs(self):
        import scipy.sparse as sp

        g = PartGraph.from_scipy(sp.csr_matrix((1, 1)))
        assert multilevel_bisect(g).tolist() == [0]


class TestRecursiveBisection:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_valid_partition(self, small_grid, k):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = recursive_bisection(g, k, seed=0)
        assert part.min() >= 0 and part.max() == k - 1
        assert len(np.unique(part)) == k

    def test_grid_16_parts_beats_random_hugely(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = recursive_bisection(g, 16, seed=0)
        rnd = np.random.default_rng(0).integers(0, 16, g.n)
        assert g.edgecut(part) < 0.3 * g.edgecut(rnd)

    def test_scale_free_balance(self, small_rmat):
        g = PartGraph.from_matrix(small_rmat, "nnz")
        part = recursive_bisection(g, 8, ub=1.10, seed=0)
        q = partition_quality(g, part, 8)
        # hub granularity can exceed ub, but must stay near it
        vmax = g.vwgt[:, 0].max()
        avg = g.total_weight()[0] / 8
        assert q.imbalance[0] <= max(1.25, (avg + vmax) / avg + 0.05)

    def test_nonpower_of_two(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = recursive_bisection(g, 6, seed=0)
        assert len(np.unique(part)) == 6
        assert g.imbalance(part, 6)[0] < 1.35

    def test_nparts_one(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        assert (recursive_bisection(g, 1) == 0).all()

    def test_invalid_nparts(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        with pytest.raises(ValueError, match="nparts"):
            recursive_bisection(g, 0)

    def test_deterministic(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        p1 = recursive_bisection(g, 8, seed=42)
        p2 = recursive_bisection(g, 8, seed=42)
        assert np.array_equal(p1, p2)


class TestNestedDerivation:
    def test_nesting_property(self, small_rmat):
        """part_4 derived from part_16 groups exactly 4 consecutive ids."""
        g = PartGraph.from_matrix(small_rmat, "nnz")
        p16 = recursive_bisection(g, 16, seed=1)
        p4 = derive_nested_partition(p16, 16, 4)
        assert p4.max() == 3
        # every fine part maps wholly into one coarse part
        for fine_id in range(16):
            members = p4[p16 == fine_id]
            assert len(np.unique(members)) == 1
            assert members[0] == fine_id // 4

    def test_identity(self):
        p = np.array([0, 1, 2, 3])
        assert np.array_equal(derive_nested_partition(p, 4, 4), p)

    def test_validation(self):
        p = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError, match="powers of two"):
            derive_nested_partition(p, 6, 2)
        with pytest.raises(ValueError, match="divide"):
            derive_nested_partition(p, 4, 8)


class TestBalanceRepair:
    def test_repairs_overweight_part(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = np.zeros(g.n, dtype=np.int64)
        part[: g.n // 8] = 1
        part[g.n // 8: g.n // 4] = 2
        part[g.n // 4: g.n // 4 + 10] = 3  # part 0 hugely overweight
        repaired = kway_balance_refine(g, part, 4, ub=1.10)
        assert g.imbalance(repaired, 4)[0] < g.imbalance(part, 4)[0]
        assert g.imbalance(repaired, 4)[0] < 1.2

    def test_noop_when_balanced(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = recursive_bisection(g, 4, seed=0)
        repaired = kway_balance_refine(g, part, 4, ub=1.10)
        assert g.edgecut(repaired) <= g.edgecut(part) * 1.2

    def test_quality_report(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part = recursive_bisection(g, 4, seed=0)
        q = partition_quality(g, part, 4)
        assert q.nparts == 4
        assert q.min_part_weight > 0
        assert q.max_part_weight >= q.min_part_weight
        assert q.imbalance[0] >= 1.0
