"""Parallel execution layer: bit-identity, cache safety, seed schemes.

The contract under test is absolute: at any job count, every public
entry point produces output bit-identical to its serial reference.
Parallelism is an execution detail — if any of these tests fails, the
process-pool layer has leaked scheduling into results.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import atomic_save_npy, cached_rpart, default_cache_dir, spmv_grid
from repro.parallel import (
    parallel_hypergraph_recursive_bisection,
    parallel_map,
    parallel_partition_sweep,
    parallel_recursive_bisection,
    resolve_jobs,
    schedule_makespan,
)
from repro.partitioning import partition_matrix
from repro.partitioning._util import child_seeds
from repro.partitioning.hkway import hypergraph_recursive_bisection
from repro.partitioning.hypergraph import Hypergraph
from repro.partitioning.kway import recursive_bisection
from repro.partitioning.partgraph import PartGraph
from repro.regress import GridSpec, check_goldens, generate_goldens
from repro.runtime import FaultPlan
from repro.runtime.faults import fault_campaign


# ---------------------------------------------------------------------------
# helpers / plumbing
# ---------------------------------------------------------------------------


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) == max(os.cpu_count() or 1, 1)


def test_parallel_map_order_and_serial_fallback():
    items = list(range(7))
    assert parallel_map(str, items, jobs=None) == [str(i) for i in items]
    assert parallel_map(str, items, jobs=3) == [str(i) for i in items]
    assert parallel_map(str, [], jobs=3) == []


def test_parallel_map_accepts_external_executor():
    with ProcessPoolExecutor(max_workers=2) as pool:
        assert parallel_map(abs, [-3, -1, -2], executor=pool) == [3, 1, 2]


# ---------------------------------------------------------------------------
# seed schemes
# ---------------------------------------------------------------------------


def test_child_seeds_legacy_is_heap_walk():
    assert child_seeds(0) == (1, 2)
    assert child_seeds(5, "legacy") == (11, 12)


def test_child_seeds_legacy_rejects_seedsequence():
    with pytest.raises(TypeError):
        child_seeds(np.random.SeedSequence(3), "legacy")


def test_child_seeds_unknown_scheme():
    with pytest.raises(ValueError, match="unknown seed scheme"):
        child_seeds(0, "nope")


def test_child_seeds_spawn_deterministic():
    # spawning twice from the same root yields identical child entropy
    a_l, a_r = child_seeds(42, "spawn")
    b_l, b_r = child_seeds(42, "spawn")
    assert a_l.entropy == b_l.entropy and a_l.spawn_key == b_l.spawn_key
    assert a_r.entropy == b_r.entropy and a_r.spawn_key == b_r.spawn_key
    # and child streams differ from each other
    rng_l = np.random.default_rng(a_l)
    rng_r = np.random.default_rng(a_r)
    assert not np.array_equal(rng_l.random(8), rng_r.random(8))


def test_child_seeds_spawn_accepts_seedsequence():
    root = np.random.SeedSequence(7)
    left, right = child_seeds(root, "spawn")
    # grandchildren keyed by tree position, reproducibly
    gl, _ = child_seeds(left, "spawn")
    gl2, _ = child_seeds(child_seeds(np.random.SeedSequence(7), "spawn")[0], "spawn")
    assert gl.spawn_key == gl2.spawn_key


def test_spawn_scheme_root_bisection_matches_legacy(small_rmat):
    # default_rng(s) == default_rng(SeedSequence(s)): k=2 agrees across schemes
    g = PartGraph.from_matrix(small_rmat, vertex_weights="nnz")
    legacy = recursive_bisection(g, 2, seed=3, seed_scheme="legacy")
    spawn = recursive_bisection(g, 2, seed=3, seed_scheme="spawn")
    assert np.array_equal(legacy, spawn)


def test_spawn_scheme_is_reproducible(small_rmat):
    g = PartGraph.from_matrix(small_rmat, vertex_weights="nnz")
    a = recursive_bisection(g, 8, seed=3, seed_scheme="spawn")
    b = recursive_bisection(g, 8, seed=3, seed_scheme="spawn")
    assert np.array_equal(a, b)
    # and it is a genuinely different tree seeding than legacy at k>2
    assert not np.array_equal(a, recursive_bisection(g, 8, seed=3))


# ---------------------------------------------------------------------------
# parallel RB bit-identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["legacy", "spawn"])
def test_parallel_rb_bit_identical_gp(small_rmat, scheme):
    g = PartGraph.from_matrix(small_rmat, vertex_weights="nnz")
    ser = recursive_bisection(g, 8, ub=1.10, seed=3, seed_scheme=scheme)
    par = parallel_recursive_bisection(g, 8, ub=1.10, seed=3, jobs=3, seed_scheme=scheme)
    assert np.array_equal(ser, par)


def test_parallel_rb_bit_identical_gp_mc(small_grid):
    g = PartGraph.from_matrix(small_grid, vertex_weights=("unit", "nnz"))
    ser = recursive_bisection(g, 6, ub=1.10, seed=1)
    par = parallel_recursive_bisection(g, 6, ub=1.10, seed=1, jobs=2)
    assert np.array_equal(ser, par)


def test_parallel_rb_bit_identical_hp(small_powerlaw):
    hg = Hypergraph.from_matrix_column_net(small_powerlaw, vertex_weights="nnz")
    ser = hypergraph_recursive_bisection(hg, 4, ub=1.10, seed=5)
    par = parallel_hypergraph_recursive_bisection(hg, 4, ub=1.10, seed=5, jobs=2)
    assert np.array_equal(ser, par)


def test_parallel_rb_serial_fallback_is_reference(small_rmat):
    # jobs=None/1 must not even spin up a pool — identical by construction
    g = PartGraph.from_matrix(small_rmat, vertex_weights="nnz")
    assert np.array_equal(
        parallel_recursive_bisection(g, 8, seed=2, jobs=None),
        recursive_bisection(g, 8, seed=2),
    )


def test_parallel_rb_shared_executor(small_rmat):
    g = PartGraph.from_matrix(small_rmat, vertex_weights="nnz")
    ser = recursive_bisection(g, 4, seed=0)
    with ProcessPoolExecutor(max_workers=2) as pool:
        par = parallel_recursive_bisection(g, 4, seed=0, executor=pool)
    assert np.array_equal(ser, par)


def test_partition_matrix_jobs_bit_identical(small_rmat):
    for method in ("gp", "hp", "gp-mc"):
        ser = partition_matrix(small_rmat, 4, method=method, seed=2)
        par = partition_matrix(small_rmat, 4, method=method, seed=2, jobs=2)
        assert np.array_equal(ser.part, par.part), method


@pytest.mark.parametrize(
    "name,method",
    [("hollywood-2009", "gp"), ("rmat_22", "hp")],
)
def test_parallel_rb_bit_identical_on_corpus(name, method):
    """Corpus-scale spot check of the identity the bench proves in full.

    One matrix per partitioner path, at a modest k so the whole test stays
    in tens of seconds; ``benchmarks/bench_partition_parallel.py`` asserts
    the same bit-identity for all ten corpus matrices at p=64.
    """
    from repro.generators.corpus import load_corpus_matrix

    A = load_corpus_matrix(name)
    ser = partition_matrix(A, 8, method=method, seed=0)
    par = partition_matrix(A, 8, method=method, seed=0, jobs=2)
    assert np.array_equal(ser.part, par.part)


def test_parallel_sweep_matches_partition_matrix(small_rmat, small_grid):
    specs = [("r_gp", small_rmat, "gp", 8), ("g_hp", small_grid, "hp", 4)]
    trace: list = []
    out = parallel_partition_sweep(specs, jobs=2, seed=1, trace=trace)
    for name, A, kind, k in specs:
        ref = partition_matrix(A, k, method=kind, seed=1).part
        assert np.array_equal(out[name], ref), name
    # trace covers build + tree + refine for both matrices, DAG is replayable
    ids = {t["id"] for t in trace}
    assert {"r_gp:build", "r_gp:r", "r_gp:refine", "g_hp:build", "g_hp:refine"} <= ids
    assert schedule_makespan(trace, 2) <= schedule_makespan(trace, 1)


def test_parallel_sweep_serial_path(small_rmat):
    out = parallel_partition_sweep([("m", small_rmat, "gp", 4)], jobs=1, seed=0)
    ref = partition_matrix(small_rmat, 4, method="gp", seed=0).part
    assert np.array_equal(out["m"], ref)


# ---------------------------------------------------------------------------
# schedule replay
# ---------------------------------------------------------------------------


def test_schedule_makespan_chain_and_fanout():
    chain = [
        {"id": "a", "deps": [], "cpu": 1.0},
        {"id": "b", "deps": ["a"], "cpu": 1.0},
        {"id": "c", "deps": ["b"], "cpu": 1.0},
    ]
    assert schedule_makespan(chain, 4) == pytest.approx(3.0)
    fan = [{"id": f"t{i}", "deps": [], "cpu": 1.0} for i in range(4)]
    assert schedule_makespan(fan, 1) == pytest.approx(4.0)
    assert schedule_makespan(fan, 4) == pytest.approx(1.0)
    assert schedule_makespan(fan, 2) == pytest.approx(2.0)


def test_schedule_makespan_rejects_bad_traces():
    with pytest.raises(ValueError, match="workers"):
        schedule_makespan([], 0)
    with pytest.raises(ValueError, match="duplicate"):
        schedule_makespan([{"id": "a", "deps": [], "cpu": 1}] * 2, 1)
    with pytest.raises(ValueError, match="unknown dependencies"):
        schedule_makespan([{"id": "a", "deps": ["ghost"], "cpu": 1}], 1)
    cyc = [
        {"id": "a", "deps": ["b"], "cpu": 1},
        {"id": "b", "deps": ["a"], "cpu": 1},
    ]
    with pytest.raises(ValueError, match="cycle"):
        schedule_makespan(cyc, 1)
    assert schedule_makespan([], 1) == 0.0


# ---------------------------------------------------------------------------
# concurrency-safe partition cache
# ---------------------------------------------------------------------------


def _racing_writer(A_data, A_indices, A_indptr, n, cache_dir: str) -> None:
    import scipy.sparse as sp

    A = sp.csr_matrix((A_data, A_indices, A_indptr), shape=(n, n))
    cached_rpart(A, "gp", 4, seed=0, cache_dir=Path(cache_dir))


def test_cache_race_two_processes(small_rmat, tmp_path):
    """Two uncoordinated writers of the same key leave one valid entry."""
    A = small_rmat
    args = (A.data, A.indices, A.indptr, A.shape[0], str(tmp_path))
    ctx = multiprocessing.get_context("spawn")
    procs = [ctx.Process(target=_racing_writer, args=args) for _ in range(2)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=240)
        assert p.exitcode == 0
    entries = list(tmp_path.glob("*_gp_k4_s0.npy"))
    assert len(entries) == 1
    assert not list(tmp_path.glob("*.tmp-*")), "tmp files must never survive"
    part = np.load(entries[0])
    assert np.array_equal(part, partition_matrix(A, 4, method="gp", seed=0).part)


def test_cached_rpart_torn_file_is_a_miss(small_rmat, tmp_path):
    ref = cached_rpart(small_rmat, "gp", 4, cache_dir=tmp_path)
    entry = next(tmp_path.glob("*_gp_k4_s0.npy"))
    entry.write_bytes(b"\x93NUMPY torn mid-write")
    again = cached_rpart(small_rmat, "gp", 4, cache_dir=tmp_path)
    assert np.array_equal(ref, again)


def test_cached_rpart_stale_length_is_a_miss(small_rmat, tmp_path):
    ref = cached_rpart(small_rmat, "gp", 4, cache_dir=tmp_path)
    entry = next(tmp_path.glob("*_gp_k4_s0.npy"))
    atomic_save_npy(entry, np.zeros(3, dtype=np.int64))
    again = cached_rpart(small_rmat, "gp", 4, cache_dir=tmp_path)
    assert np.array_equal(ref, again)


def test_atomic_save_creates_missing_dirs(tmp_path):
    path = tmp_path / "deep" / "er" / "x.npy"
    atomic_save_npy(path, np.arange(5))
    assert np.array_equal(np.load(path), np.arange(5))


def test_cached_rpart_jobs_hits_same_cache_entry(small_rmat, tmp_path):
    ser = cached_rpart(small_rmat, "gp", 4, cache_dir=tmp_path)
    (next(tmp_path.glob("*_gp_k4_s0.npy"))).unlink()
    par = cached_rpart(small_rmat, "gp", 4, cache_dir=tmp_path, jobs=2)
    assert np.array_equal(ser, par)


def test_default_cache_dir_honors_env(tmp_path, monkeypatch):
    target = tmp_path / "scratch" / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    assert default_cache_dir() == target
    assert target.is_dir()


# ---------------------------------------------------------------------------
# sweep fan-out bit-identity
# ---------------------------------------------------------------------------


def test_spmv_grid_jobs_identical(small_rmat, small_grid, tmp_path):
    mats = {"r": small_rmat, "g": small_grid}
    kw = dict(methods=["1d-block", "2d-gp"], procs=(4, 8))
    ser = spmv_grid(mats, cache_dir=tmp_path / "s", **kw)
    par = spmv_grid(mats, cache_dir=tmp_path / "p", jobs=2, **kw)
    assert ser == par


def test_regress_jobs_identical(small_rmat, small_powerlaw, tmp_path):
    mats = {"r": small_rmat, "p": small_powerlaw}
    spec = GridSpec(matrices=("r", "p"), procs=(4,), methods=("1d-gp", "2d-gp"))
    gdir = tmp_path / "golden"
    generate_goldens(spec, gdir, cache_dir=tmp_path / "c1", matrices=mats, jobs=2)
    gdir2 = tmp_path / "golden2"
    generate_goldens(spec, gdir2, cache_dir=tmp_path / "c2", matrices=mats)
    for name in mats:
        assert (gdir / f"{name}.json").read_bytes() == (gdir2 / f"{name}.json").read_bytes()
    mism, ncells = check_goldens(
        spec, gdir, cache_dir=tmp_path / "c3", matrices=mats, jobs=2
    )
    assert mism == [] and ncells == 4


def test_fault_campaign_jobs_identical(small_rmat, tmp_path):
    from repro.bench.harness import layout_for

    layouts = [
        layout_for(small_rmat, m, 8, cache_dir=tmp_path)
        for m in ("1d-block", "2d-block", "2d-gp")
    ]
    plan = FaultPlan.from_rates(8, 40, seed=1, failstop_rate=0.05, corruption_rate=0.02)
    assert fault_campaign(small_rmat, layouts, plan) == fault_campaign(
        small_rmat, layouts, plan, jobs=2
    )
