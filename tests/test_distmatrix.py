"""Tests for the distributed SpMV engine — the paper's four phases.

The central invariant of the whole runtime: for every layout, the
four-phase distributed multiply equals ``A @ x`` up to float summation
order, and the communication metrics respect the paper's analytic bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import rmat
from repro.layouts import make_layout, process_grid_shape
from repro.runtime import CAB, ZERO_COMM, CostLedger, DistSparseMatrix, comm_stats

ALL_CHEAP = ["1d-block", "1d-random", "2d-block", "2d-random"]


class TestSpmvCorrectness:
    @pytest.mark.parametrize("method", ALL_CHEAP + ["1d-gp", "2d-gp"])
    def test_matches_scipy(self, small_powerlaw, method):
        A = small_powerlaw
        lay = make_layout(method, A, 6, seed=2)
        dist = DistSparseMatrix(A, lay)
        x = np.random.default_rng(1).standard_normal(A.shape[0])
        assert np.abs(dist.spmv(x) - A @ x).max() < 1e-10

    def test_single_process(self, small_rmat):
        lay = make_layout("1d-block", small_rmat, 1)
        dist = DistSparseMatrix(small_rmat, lay)
        x = np.ones(small_rmat.shape[0])
        assert np.allclose(dist.spmv(x), small_rmat @ x)
        s = comm_stats(dist)
        assert s.max_messages == 0 and s.total_comm_volume == 0

    def test_rectangular_raises(self):
        import scipy.sparse as sp

        lay = make_layout("1d-block", sp.identity(4, format="csr"), 2)
        with pytest.raises(ValueError, match="square"):
            DistSparseMatrix(sp.csr_matrix((4, 5)), lay)

    def test_dim_mismatch_raises(self, small_rmat, small_grid):
        lay = make_layout("1d-block", small_rmat, 2)
        with pytest.raises(ValueError, match="dim"):
            DistSparseMatrix(small_grid, lay)

    @given(
        scale=st.integers(4, 7),
        p=st.sampled_from([2, 3, 4, 6, 9]),
        method=st.sampled_from(ALL_CHEAP),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_spmv_equals_scipy(self, scale, p, method, seed):
        A = rmat(scale, 4, seed=seed)
        lay = make_layout(method, A, p, seed=seed)
        dist = DistSparseMatrix(A, lay)
        x = np.random.default_rng(seed).standard_normal(A.shape[0])
        assert np.abs(dist.spmv(x) - A @ x).max() < 1e-9


class TestMessageBounds:
    """Paper section 3.2: the analytic message-count guarantees."""

    @pytest.mark.parametrize("p", [4, 9, 16])
    def test_2d_bound_pr_pc_minus_2(self, small_powerlaw, p):
        pr, pc = process_grid_shape(p)
        for method in ("2d-block", "2d-random", "2d-gp"):
            lay = make_layout(method, small_powerlaw, p, seed=1)
            dist = DistSparseMatrix(small_powerlaw, lay)
            assert comm_stats(dist).max_messages <= pr + pc - 2

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_1d_bound_p_minus_1(self, small_powerlaw, p):
        for method in ("1d-block", "1d-random"):
            lay = make_layout(method, small_powerlaw, p, seed=1)
            dist = DistSparseMatrix(small_powerlaw, lay)
            s = comm_stats(dist)
            assert s.max_messages <= p - 1
            assert s.fold_messages == 0  # 1D has no fold phase

    def test_1d_dense_graph_approaches_p(self, small_powerlaw):
        """Scale-free graphs drive 1D message counts to p-1 (Table 3)."""
        lay = make_layout("1d-random", small_powerlaw, 8, seed=0)
        dist = DistSparseMatrix(small_powerlaw, lay)
        assert comm_stats(dist).max_messages >= 6


class TestCommStats:
    def test_volume_equals_bruteforce(self, small_grid, rng):
        lay = make_layout("1d-random", small_grid, 4, seed=3)
        dist = DistSparseMatrix(small_grid, lay)
        s = comm_stats(dist)
        # brute force: expand volume = sum over (row owner != col owner) of
        # unique (col, rank-needing-it) pairs
        A = small_grid.tocoo()
        own = lay.vector_part
        pairs = {(int(c), int(own[r])) for r, c in zip(A.row, A.col) if own[r] != own[c]}
        assert s.expand_volume == len(pairs)
        assert s.fold_volume == 0
        assert s.total_comm_volume == len(pairs)

    def test_nnz_imbalance_definition(self, small_rmat):
        lay = make_layout("1d-block", small_rmat, 4)
        dist = DistSparseMatrix(small_rmat, lay)
        s = comm_stats(dist)
        counts = dist.local_nnz
        assert np.isclose(s.nnz_imbalance, counts.max() / counts.mean())

    def test_block_layout_imbalanced_random_balanced(self, small_rmat):
        """The paper's section 2.4 randomisation claim, in miniature."""
        block = comm_stats(DistSparseMatrix(small_rmat, make_layout("1d-block", small_rmat, 8)))
        rand = comm_stats(DistSparseMatrix(small_rmat, make_layout("1d-random", small_rmat, 8, seed=1)))
        assert block.nnz_imbalance > 2.0
        # 1D moves whole rows, so a hub row still lands on one rank and
        # randomisation cannot balance below hub granularity (the paper's
        # 1D-Random imbalance ranges 1.0-4.2 for the same reason)
        assert rand.nnz_imbalance < 0.75 * block.nnz_imbalance
        assert rand.total_comm_volume > block.total_comm_volume  # the price


class TestCostModel:
    def test_linear_in_count(self, small_rmat):
        lay = make_layout("2d-random", small_rmat, 4, seed=1)
        dist = DistSparseMatrix(small_rmat, lay)
        t1 = dist.modeled_spmv_seconds(1)
        t100 = dist.modeled_spmv_seconds(100)
        assert np.isclose(t100, 100 * t1)

    def test_zero_comm_machine_counts_only_compute(self, small_rmat):
        lay = make_layout("1d-random", small_rmat, 4, seed=1)
        dist = DistSparseMatrix(small_rmat, lay, machine=ZERO_COMM)
        led = CostLedger()
        dist.charge_spmv(led)
        assert led.get("expand") == 0.0
        assert led.get("local-compute") > 0

    def test_ledger_phases(self, small_rmat):
        lay = make_layout("2d-block", small_rmat, 4)
        dist = DistSparseMatrix(small_rmat, lay, machine=CAB)
        led = CostLedger()
        dist.spmv(np.ones(small_rmat.shape[0]), led)
        bd = led.breakdown()
        assert set(bd) == {"expand", "local-compute", "fold", "sum"}
        assert all(v >= 0 for v in bd.values())

    def test_compute_time_scales_with_max_local_nnz(self, small_rmat):
        lay = make_layout("1d-block", small_rmat, 4)
        dist = DistSparseMatrix(small_rmat, lay)
        led = CostLedger()
        dist.charge_spmv(led)
        expected = CAB.gamma_flop * 2 * dist.local_nnz.max()
        assert np.isclose(led.get("local-compute"), expected)


class TestScatterGather:
    def test_roundtrip(self, small_rmat, rng):
        lay = make_layout("1d-random", small_rmat, 5, seed=4)
        dist = DistSparseMatrix(small_rmat, lay)
        x = rng.standard_normal(small_rmat.shape[0])
        assert np.array_equal(dist.gather_vector(dist.scatter_vector(x)), x)

    def test_wrong_shape(self, small_rmat):
        lay = make_layout("1d-block", small_rmat, 2)
        dist = DistSparseMatrix(small_rmat, lay)
        with pytest.raises(ValueError, match="shape"):
            dist.scatter_vector(np.zeros(3))


class TestAssemblyKernels:
    """Vector vs reference cold-path kernels: bit-identical by contract."""

    @pytest.mark.parametrize("method", ALL_CHEAP + ["2d-gp"])
    def test_assembly_bit_identical(self, small_powerlaw, method, rng):
        A = small_powerlaw
        lay = make_layout(method, A, 6, seed=3)
        dv = DistSparseMatrix(A, lay, kernel="vector")
        dr = DistSparseMatrix(A, lay, kernel="reference")
        for r in range(dv.nprocs):
            assert np.array_equal(dv.row_maps[r], dr.row_maps[r])
            assert np.array_equal(dv.col_maps[r], dr.col_maps[r])
            bv, br = dv.local_blocks[r], dr.local_blocks[r]
            assert np.array_equal(bv.data, br.data)
            assert np.array_equal(bv.indices, br.indices)
            assert np.array_equal(bv.indptr, br.indptr)
        x = rng.standard_normal(A.shape[0])
        assert np.array_equal(dv.spmv(x), dr.spmv(x))

    def test_scatter_gather_bit_identical(self, small_rmat, rng):
        lay = make_layout("2d-random", small_rmat, 5, seed=4)
        dv = DistSparseMatrix(small_rmat, lay, kernel="vector")
        dr = DistSparseMatrix(small_rmat, lay, kernel="reference")
        x = rng.standard_normal(small_rmat.shape[0])
        sv, sr = dv.scatter_vector(x), dr.scatter_vector(x)
        assert all(np.array_equal(a, b) for a, b in zip(sv, sr))
        assert np.array_equal(dv.gather_vector(sv), dr.gather_vector(sr))

    def test_use_kernel_switches_default(self, small_rmat):
        from repro.runtime import use_kernel

        lay = make_layout("1d-block", small_rmat, 3)
        with use_kernel("reference"):
            dist = DistSparseMatrix(small_rmat, lay)
            assert dist._kernel == "reference"
        dist = DistSparseMatrix(small_rmat, lay)
        assert dist._kernel == "vector"

    def test_unknown_kernel_rejected(self, small_rmat):
        from repro.runtime import use_kernel

        lay = make_layout("1d-block", small_rmat, 2)
        with pytest.raises(ValueError, match="unknown distmatrix kernel"):
            DistSparseMatrix(small_rmat, lay, kernel="simd")
        with pytest.raises(ValueError, match="unknown distmatrix kernel"):
            with use_kernel("simd"):
                pass
