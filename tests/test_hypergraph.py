"""Tests for the hypergraph model and its partitioner."""

import numpy as np
import pytest

from repro.graphs import from_edges
from repro.partitioning import Hypergraph, hypergraph_recursive_bisection
from repro.partitioning.coarsen import COARSEN_KERNELS, handshake_matching
from repro.partitioning.hcoarsen import (
    _coarse_map,
    _coarse_vwgt,
    hcoarsen_to,
    hcontract,
    similarity_graph,
)
from repro.partitioning.hkway import multilevel_hypergraph_bisect
from repro.partitioning.hrefine import fm_refine_hypergraph, hg_balance_allowance


@pytest.fixture
def tiny_hg(tiny_matrix) -> Hypergraph:
    return Hypergraph.from_matrix_column_net(tiny_matrix)


class TestColumnNetModel:
    def test_net_contains_column_pattern_plus_self(self, tiny_matrix):
        hg = Hypergraph.from_matrix_column_net(tiny_matrix)
        assert hg.nnets == hg.n == tiny_matrix.shape[0]
        A = tiny_matrix.tocsc()
        for j in range(hg.nnets):
            col_rows = set(A.indices[A.indptr[j]: A.indptr[j + 1]].tolist())
            assert set(hg.pins(j).tolist()) == col_rows | {j}

    def test_rectangular_raises(self):
        with pytest.raises(ValueError, match="square"):
            Hypergraph.from_matrix_column_net(from_edges([0], [1], (2, 3)))

    def test_transpose_consistency(self, tiny_hg):
        for v in range(tiny_hg.n):
            for e in tiny_hg.nets_of(v):
                assert v in tiny_hg.pins(e)


class TestCutMetrics:
    def test_connectivity_brute_force(self, tiny_hg, rng):
        part = rng.integers(0, 3, tiny_hg.n)
        lam = tiny_hg.connectivity(part, 3)
        for e in range(tiny_hg.nnets):
            assert lam[e] == len(set(part[tiny_hg.pins(e)].tolist()))

    def test_connectivity_minus_one_is_expand_volume(self, tiny_hg):
        """For a single part, the cut is zero."""
        assert tiny_hg.cut_connectivity_minus_one(np.zeros(tiny_hg.n, dtype=int), 1) == 0.0

    def test_cut_nets_counts_spanning_nets(self, tiny_hg, rng):
        part = rng.integers(0, 2, tiny_hg.n)
        lam = tiny_hg.connectivity(part, 2)
        assert tiny_hg.cut_nets(part, 2) == (lam > 1).sum()

    def test_part_weights(self, tiny_hg):
        part = np.array([0, 0, 1, 1, 1, 0])
        pw = tiny_hg.part_weights(part, 2)
        assert np.isclose(pw.sum(), tiny_hg.total_weight()[0])


class TestInduced:
    def test_small_nets_dropped(self, tiny_hg):
        sub = tiny_hg.induced(np.array([0, 1]))
        assert sub.n == 2
        assert (np.diff(sub.H.indptr) >= 2).all()


class TestCoarsening:
    def test_similarity_excludes_huge_nets(self, small_rmat):
        hg = Hypergraph.from_matrix_column_net(small_rmat)
        sim = similarity_graph(hg, max_net_size=10)
        # similarity fill must stay well below the quadratic hub blowup
        assert sim.xadj[-1] < 40 * hg.n

    def test_contract_preserves_weight(self, tiny_hg):
        match = np.array([1, 0, 3, 2, 4, 5])
        hgc, cmap = hcontract(tiny_hg, match)
        assert np.isclose(hgc.total_weight()[0], tiny_hg.total_weight()[0])
        assert hgc.n == 4
        assert cmap[0] == cmap[1]


class TestHcoarsenKernels:
    """Vector and reference hypergraph stages must be bit-identical."""

    def test_similarity_graph_bit_identical(self, small_rmat):
        hg = Hypergraph.from_matrix_column_net(small_rmat)
        sims = {k: similarity_graph(hg, kernel=k) for k in COARSEN_KERNELS}
        ref, vec = sims["reference"], sims["vector"]
        assert np.array_equal(ref.xadj, vec.xadj)
        assert np.array_equal(ref.adjncy, vec.adjncy)
        assert np.array_equal(ref.adjwgt, vec.adjwgt)

    def test_hcontract_bit_identical(self, small_rmat):
        hg = Hypergraph.from_matrix_column_net(small_rmat)
        sim = similarity_graph(hg)
        match = handshake_matching(sim, np.random.default_rng(0))
        out = {k: hcontract(hg, match, kernel=k) for k in COARSEN_KERNELS}
        (ref, ref_c), (vec, vec_c) = out["reference"], out["vector"]
        assert np.array_equal(ref_c, vec_c)
        assert np.array_equal(ref.H.indptr, vec.H.indptr)
        assert np.array_equal(ref.H.indices, vec.H.indices)
        assert np.array_equal(ref.H.data, vec.H.data)
        assert np.array_equal(ref.vwgt, vec.vwgt)
        assert np.array_equal(ref.netwgt, vec.netwgt)

    def test_hcoarsen_to_stack_bit_identical(self, small_powerlaw):
        hg = Hypergraph.from_matrix_column_net(small_powerlaw)
        stacks = {
            k: hcoarsen_to(hg, 20, np.random.default_rng(0), kernel=k)
            for k in COARSEN_KERNELS
        }
        ref, vec = stacks["reference"], stacks["vector"]
        assert len(ref) == len(vec) > 1
        for (hr, cr), (hv, cv) in zip(ref, vec):
            assert np.array_equal(hr.H.indptr, hv.H.indptr)
            assert np.array_equal(hr.H.indices, hv.H.indices)
            assert np.array_equal(hr.vwgt, hv.vwgt)
            assert (cr is None and cv is None) or np.array_equal(cr, cv)

    def test_coarse_vwgt_bincount_matches_add_at(self, small_rmat):
        """The per-constraint bincount histogram is bit-identical to the
        former np.add.at accumulation (both sum in vertex order)."""
        hg = Hypergraph.from_matrix_column_net(small_rmat)
        sim = similarity_graph(hg)
        match = handshake_matching(sim, np.random.default_rng(1))
        cmap, nc = _coarse_map(match)
        got = _coarse_vwgt(hg, cmap, nc)
        expect = np.zeros((nc, hg.ncon))
        np.add.at(expect, cmap, hg.vwgt)
        assert np.array_equal(got, expect)

    def test_empty_similarity_graph_stalls_coarsening(self):
        """All-singleton nets leave no usable similarity edges: both
        kernels return the empty graph and hcoarsen_to stops at level 0."""
        import scipy.sparse as sp

        hg = Hypergraph.from_matrix_column_net(sp.identity(8, format="csr"))
        for k in COARSEN_KERNELS:
            sim = similarity_graph(hg, kernel=k)
            assert sim.xadj[-1] == 0
            levels = hcoarsen_to(hg, 2, np.random.default_rng(0), kernel=k)
            assert len(levels) == 1


class TestHypergraphFM:
    def test_improves_random_bisection(self, small_powerlaw):
        hg = Hypergraph.from_matrix_column_net(small_powerlaw)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 2, hg.n)
        before = hg.cut_connectivity_minus_one(part, 2)
        refined = fm_refine_hypergraph(hg, part, passes=3)
        assert hg.cut_connectivity_minus_one(refined, 2) < before

    def test_allowance_shape(self, tiny_hg):
        allow = hg_balance_allowance(tiny_hg, (0.5, 0.5), 1.05)
        assert allow.shape == (2, tiny_hg.ncon)


class TestHypergraphKway:
    def test_bisection_beats_random_on_grid(self, small_grid):
        hg = Hypergraph.from_matrix_column_net(small_grid)
        part = multilevel_hypergraph_bisect(hg, seed=0)
        rnd = np.random.default_rng(0).integers(0, 2, hg.n)
        assert hg.cut_connectivity_minus_one(part, 2) < 0.3 * hg.cut_connectivity_minus_one(rnd, 2)

    @pytest.mark.parametrize("k", [2, 4])
    def test_kway_valid(self, small_powerlaw, k):
        hg = Hypergraph.from_matrix_column_net(small_powerlaw)
        part = hypergraph_recursive_bisection(hg, k, seed=0)
        assert part.min() >= 0 and part.max() <= k - 1
        assert len(np.unique(part)) == k

    def test_kway_deterministic(self, small_powerlaw):
        hg = Hypergraph.from_matrix_column_net(small_powerlaw)
        p1 = hypergraph_recursive_bisection(hg, 4, seed=7)
        p2 = hypergraph_recursive_bisection(hg, 4, seed=7)
        assert np.array_equal(p1, p2)

    def test_invalid_nparts(self, small_powerlaw):
        hg = Hypergraph.from_matrix_column_net(small_powerlaw)
        with pytest.raises(ValueError, match="nparts"):
            hypergraph_recursive_bisection(hg, 0)
