"""Tests for repro.generators — graph generators and the proxy corpus."""

import numpy as np
import pytest

from repro.generators import (
    GRAPH500_PARAMS,
    bter,
    chung_lu,
    corpus_names,
    corpus_spec,
    grid2d,
    grid3d,
    load_corpus_matrix,
    powerlaw_degree_sequence,
    preferential_attachment,
    rmat,
    rmat_edges,
    webgraph,
)
from repro.graphs import (
    degrees,
    graph_stats,
    is_structurally_symmetric,
    nonzeros_per_row,
)


class TestRmat:
    def test_deterministic(self):
        assert (rmat(8, 4, seed=5) != rmat(8, 4, seed=5)).nnz == 0

    def test_seed_changes_graph(self):
        assert (rmat(8, 4, seed=5) != rmat(8, 4, seed=6)).nnz > 0

    def test_shape_and_symmetry(self):
        A = rmat(9, 8, seed=1)
        assert A.shape == (512, 512)
        assert is_structurally_symmetric(A)
        assert A.diagonal().sum() == 0

    def test_edge_count_close_to_nominal(self):
        A = rmat(12, 8, seed=1)
        nominal = 2 * 8 * 4096
        assert 0.5 * nominal < A.nnz <= nominal

    def test_hubs_at_low_ids(self):
        A = rmat(11, 8, seed=2)
        d = nonzeros_per_row(A)
        n = A.shape[0]
        assert d[: n // 8].mean() > 3 * d[n // 2 :].mean()

    def test_graph500_params_sum_to_one(self):
        assert abs(sum(GRAPH500_PARAMS) - 1.0) < 1e-12

    def test_bad_params_raise(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat_edges(4, 2, params=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError, match="scale"):
            rmat_edges(0, 2)

    def test_noise_variant_runs(self):
        A = rmat(8, 4, seed=1, noise=0.1)
        assert A.nnz > 0


class TestPowerlawSequence:
    def test_mean_and_cap(self):
        w = powerlaw_degree_sequence(5000, gamma=2.2, mean_degree=20, max_degree=500, seed=1)
        assert abs(w.mean() - 20) / 20 < 0.35  # capping pulls the mean a bit
        assert w.max() <= 500
        assert (np.diff(w) <= 0).all()  # descending: hubs first

    def test_validation(self):
        with pytest.raises(ValueError, match="> 1"):
            powerlaw_degree_sequence(10, gamma=1.0, mean_degree=2)
        with pytest.raises(ValueError, match="positive"):
            powerlaw_degree_sequence(0, gamma=2.0, mean_degree=2)

    def test_capped_by_n(self):
        w = powerlaw_degree_sequence(50, gamma=1.5, mean_degree=10, seed=2)
        assert w.max() <= 49


class TestChungLu:
    def test_realized_degrees_track_weights(self):
        w = powerlaw_degree_sequence(3000, gamma=2.5, mean_degree=14, max_degree=200, seed=1)
        A = chung_lu(w, seed=2)
        d = degrees(A)
        # hubs (first decile by weight) should have much higher realised degree
        assert d[:300].mean() > 2.5 * d[1500:].mean()

    def test_zero_weights_give_empty(self):
        A = chung_lu(np.zeros(10))
        assert A.nnz == 0 and A.shape == (10, 10)

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError, match="non-negative"):
            chung_lu(np.array([1.0, -2.0]))

    def test_deterministic(self):
        w = np.full(200, 6.0)
        assert (chung_lu(w, seed=3) != chung_lu(w, seed=3)).nnz == 0


class TestPreferentialAttachment:
    def test_structure(self):
        A = preferential_attachment(400, m=3, seed=1)
        assert A.shape == (400, 400)
        assert is_structurally_symmetric(A)
        # every non-seed vertex connects to >= m earlier vertices
        assert nonzeros_per_row(A).min() >= 3

    def test_edge_count(self):
        A = preferential_attachment(500, m=4, seed=2)
        expected = 2 * (10 + (500 - 5) * 4)  # seed clique C(5,2)=10 + m per vertex
        assert A.nnz == expected

    def test_validation(self):
        with pytest.raises(ValueError, match="m must be"):
            preferential_attachment(10, m=0)
        with pytest.raises(ValueError, match="n > m"):
            preferential_attachment(3, m=5)

    def test_heavy_tail(self):
        A = preferential_attachment(3000, m=4, seed=3)
        assert graph_stats(A).skew > 5


def _clustering_estimate(A, rng, samples=300):
    """Monte-Carlo mean local clustering coefficient."""
    deg = nonzeros_per_row(A)
    eligible = np.flatnonzero(deg >= 2)
    cs = []
    for v in rng.choice(eligible, size=min(samples, len(eligible)), replace=False):
        nbrs = A.indices[A.indptr[v]: A.indptr[v + 1]]
        sub = A[np.ix_(nbrs, nbrs)]
        k = len(nbrs)
        cs.append(sub.nnz / (k * (k - 1)))
    return float(np.mean(cs))


class TestBter:
    def test_shape_and_symmetry(self):
        A = bter(2000, gamma=1.9, mean_degree=10, max_degree=300, seed=1)
        assert A.shape == (2000, 2000)
        assert is_structurally_symmetric(A)

    def test_more_clustered_than_chunglu(self, rng):
        A = bter(3000, gamma=2.0, mean_degree=14, max_degree=400, seed=2)
        w = powerlaw_degree_sequence(3000, gamma=2.0, mean_degree=14, max_degree=400, seed=2)
        B = chung_lu(w, seed=3)
        assert _clustering_estimate(A, rng) > 2 * _clustering_estimate(B, rng)

    def test_deterministic(self):
        assert (bter(800, seed=9) != bter(800, seed=9)).nnz == 0


class TestWebgraph:
    def test_locality(self):
        """Most edges stay within a small id window (host locality)."""
        A = webgraph(4000, mean_degree=12, intra_fraction=0.85, seed=1).tocoo()
        near = np.abs(A.row - A.col) < 600  # max host size for default params
        assert near.mean() > 0.5
        # and a random graph of the same size has almost no such locality
        B = rmat(12, 3, seed=1).tocoo()
        assert near.mean() > 2 * (np.abs(B.row - B.col) < 600).mean()

    def test_hubs_exist(self):
        A = webgraph(4000, mean_degree=10, hub_fraction=0.002, hub_degree=800, seed=2)
        assert nonzeros_per_row(A).max() > 400

    def test_validation(self):
        with pytest.raises(ValueError, match="intra_fraction"):
            webgraph(100, intra_fraction=1.5)

    def test_deterministic(self):
        assert (webgraph(1000, seed=4) != webgraph(1000, seed=4)).nnz == 0


class TestMeshes:
    def test_grid2d_structure(self):
        A = grid2d(5, 7)
        assert A.shape == (35, 35)
        assert A.nnz == 2 * (4 * 7 + 5 * 6)
        d = nonzeros_per_row(A)
        assert d.max() == 4 and d.min() == 2

    def test_grid3d_structure(self):
        A = grid3d(3, 4, 5)
        assert A.shape == (60, 60)
        d = nonzeros_per_row(A)
        assert d.max() == 6 and d.min() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            grid2d(0, 3)
        with pytest.raises(ValueError):
            grid3d(2, 0, 2)


class TestCorpus:
    def test_ten_matrices_in_paper_order(self):
        names = corpus_names()
        assert len(names) == 10
        assert names[0] == "hollywood-2009"
        assert names[-1] == "rmat_26"

    def test_specs_record_paper_stats(self):
        spec = corpus_spec("uk-2005")
        # the paper used HP for uk-2005 only because ParMETIS could not
        # handle 39.5M rows; the tractable proxy uses GP (see corpus.py)
        assert spec.partitioner == "gp"
        assert spec.paper_nnz == 1_600_000_000
        assert corpus_spec("rmat_24").partitioner == "hp"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="valid"):
            corpus_spec("not-a-matrix")

    @pytest.mark.parametrize("name", ["cit-Patents", "rmat_22", "bter"])
    def test_proxies_are_scale_free_and_symmetric(self, name):
        A = load_corpus_matrix(name)
        assert is_structurally_symmetric(A)
        assert A.diagonal().sum() == 0
        assert graph_stats(A).skew > 5  # heavy tail

    def test_cache_returns_same_object(self):
        assert load_corpus_matrix("rmat_22") is load_corpus_matrix("rmat_22")
