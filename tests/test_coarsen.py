"""Tests for repro.partitioning.coarsen — matching and contraction."""

import numpy as np
import pytest

from repro.generators import grid2d, rmat
from repro.graphs import from_edges
from repro.partitioning import PartGraph
from repro.partitioning.coarsen import (
    COARSEN_KERNELS,
    _resolve_kernel,
    _two_hop_matching,
    coarsen_level,
    coarsen_to,
    contract,
    handshake_matching,
    use_kernel,
)


def _star(nleaves: int) -> PartGraph:
    """Hub 0 with nleaves leaves — the scale-free worst case for matching."""
    r = np.zeros(nleaves, dtype=np.int64)
    c = np.arange(1, nleaves + 1, dtype=np.int64)
    A = from_edges(r, c, (nleaves + 1, nleaves + 1), symmetrize=True)
    return PartGraph.from_matrix(A, "unit")


def _check_matching(g: PartGraph, match: np.ndarray) -> None:
    """A matching must be an involution with distinct pairs."""
    assert len(match) == g.n
    for v in range(g.n):
        assert match[match[v]] == v  # involution


class TestHandshakeMatching:
    def test_involution_on_grid(self, rng):
        g = PartGraph.from_matrix(grid2d(10, 10), "unit")
        match = handshake_matching(g, rng)
        _check_matching(g, match)
        matched = (match != np.arange(g.n)).sum()
        assert matched >= 0.6 * g.n  # grids match well

    def test_star_graph_two_hop(self, rng):
        """Direct matching can pair at most hub+1 leaf; two-hop pairs the rest."""
        g = _star(64)
        match = handshake_matching(g, rng)
        _check_matching(g, match)
        matched = (match != np.arange(g.n)).sum()
        assert matched >= 0.9 * g.n  # two-hop pairs leaves with each other

    def test_weight_cap_respected(self, rng):
        g = PartGraph.from_matrix(grid2d(6, 6), "unit")
        cap = np.array([1.5])  # combined weight 2 > 1.5: nothing may match
        match = handshake_matching(g, rng, max_vertex_weight=cap)
        assert (match == np.arange(g.n)).all()

    def test_deterministic_given_rng_seed(self):
        g = PartGraph.from_matrix(rmat(8, 4, seed=1), "unit")
        m1 = handshake_matching(g, np.random.default_rng(5))
        m2 = handshake_matching(g, np.random.default_rng(5))
        assert np.array_equal(m1, m2)


class TestTwoHopMatching:
    def _run(self, g, max_vertex_weight=None):
        """Drive _two_hop_matching with every vertex still unmatched."""
        match = np.arange(g.n, dtype=np.int64)
        unmatched = np.ones(g.n, dtype=bool)
        jitter = np.zeros(len(g.adjncy))
        _two_hop_matching(g, match, unmatched, jitter, max_vertex_weight)
        _check_matching(g, match)
        return match, unmatched

    def test_isolated_vertices_pair_on_sentinel_anchor(self):
        """Edgeless vertices share anchor -1 and are merged with each other."""
        import scipy.sparse as sp

        A = sp.block_diag(
            [grid2d(2, 2), sp.csr_matrix((4, 4))], format="csr"
        )  # vertices 4..7 are isolated
        g = PartGraph.from_matrix(A, "unit")
        match, unmatched = self._run(g)
        isolated = np.arange(4, 8)
        # all isolated vertices got paired, and only with each other
        assert not unmatched[isolated].any()
        assert (match[isolated] != isolated).all()
        assert set(match[isolated]) <= set(isolated)

    def test_odd_anchor_group_leaves_one_unmatched(self):
        """A 3-leaf hub group pairs floor(3/2) couples; one leaf stays."""
        g = _star(3)
        match = np.arange(g.n, dtype=np.int64)
        unmatched = np.ones(g.n, dtype=bool)
        unmatched[0] = False  # hub already matched elsewhere
        match_before = match.copy()
        jitter = np.zeros(len(g.adjncy))
        _two_hop_matching(g, match, unmatched, jitter, None)
        _check_matching(g, match)
        leaves = np.arange(1, 4)
        assert unmatched[leaves].sum() == 1  # odd one out
        assert (match != match_before).sum() == 2  # exactly one new pair
        assert not unmatched[0]  # hub flag untouched

    def test_max_vertex_weight_rejects_heavy_pairs(self):
        g = _star(4)  # leaves have unit weight -> combined weight 2
        _, unmatched_capped = self._run(g, max_vertex_weight=np.array([1.5]))
        assert unmatched_capped.all()  # cap below any pair: nothing matches
        _, unmatched_free = self._run(g, max_vertex_weight=np.array([2.5]))
        assert not unmatched_free.all()  # with room, leaf pairs form

    def test_fewer_than_two_unmatched_is_noop(self):
        g = _star(2)
        match = np.arange(g.n, dtype=np.int64)
        unmatched = np.zeros(g.n, dtype=bool)
        unmatched[1] = True  # a single leftover vertex
        _two_hop_matching(g, match, unmatched, np.zeros(len(g.adjncy)), None)
        assert (match == np.arange(g.n)).all()
        assert unmatched[1]


class TestContract:
    def test_preserves_total_vertex_weight(self, rng, small_rmat):
        g = PartGraph.from_matrix(small_rmat, "nnz")
        match = handshake_matching(g, rng)
        gc, cmap = contract(g, match)
        assert np.allclose(gc.total_weight(), g.total_weight())
        assert cmap.max() == gc.n - 1

    def test_preserves_cut_under_projection(self, rng, small_grid):
        """Any coarse partition's cut equals the projected fine cut."""
        g = PartGraph.from_matrix(small_grid, "unit")
        gc, cmap = coarsen_level(g, rng)
        coarse_part = np.random.default_rng(1).integers(0, 2, gc.n)
        fine_part = coarse_part[cmap]
        assert np.isclose(gc.edgecut(coarse_part), g.edgecut(fine_part))

    def test_matched_pair_merges(self):
        g = _star(3)
        match = np.array([0, 2, 1, 3])  # leaves 1,2 matched
        gc, cmap = contract(g, match)
        assert gc.n == 3
        assert cmap[1] == cmap[2]
        # merged leaf pair connects to hub with weight 2
        hub_c = cmap[0]
        pair_c = cmap[1]
        W = gc.adjacency_matrix()
        assert W[hub_c, pair_c] == 2.0

    def test_vertex_weights_match_add_at(self, rng, small_rmat):
        """The bincount aggregation is bit-identical to np.add.at."""
        g = PartGraph.from_matrix(small_rmat, ("unit", "nnz"))
        match = handshake_matching(g, rng)
        gc, cmap = contract(g, match)
        expect = np.zeros((gc.n, g.ncon))
        np.add.at(expect, cmap, g.vwgt)
        assert np.array_equal(gc.vwgt, expect)


class TestCoarsenTo:
    def test_reaches_target_or_stalls(self, rng, small_rmat):
        g = PartGraph.from_matrix(small_rmat, "nnz")
        levels = coarsen_to(g, 100, rng)
        sizes = [lv[0].n for lv in levels]
        assert sizes[0] == g.n
        assert all(a > b for a, b in zip(sizes, sizes[1:]))  # strictly shrinking
        assert sizes[-1] <= max(100, int(sizes[-2] * 0.95)) or len(sizes) == 1

    def test_weight_conserved_through_stack(self, rng, small_powerlaw):
        g = PartGraph.from_matrix(small_powerlaw, "nnz")
        levels = coarsen_to(g, 50, rng)
        for gc, _ in levels:
            assert np.allclose(gc.total_weight(), g.total_weight())

    def test_scale_free_shrinks_geometrically(self, rng, small_rmat):
        """The two-hop rule must keep shrink rates healthy on power laws."""
        g = PartGraph.from_matrix(small_rmat, "nnz")
        levels = coarsen_to(g, 100, rng)
        assert levels[-1][0].n < 0.25 * g.n


def _graphs_equal(a: PartGraph, b: PartGraph) -> bool:
    return (
        np.array_equal(a.xadj, b.xadj)
        and np.array_equal(a.adjncy, b.adjncy)
        and np.array_equal(a.adjwgt, b.adjwgt)
        and np.array_equal(a.vwgt, b.vwgt)
    )


class TestCoarsenKernels:
    """The vector kernels must replay the reference bit for bit."""

    def _cases(self):
        """(graph, cap) pairs covering every kernel branch: unmasked keys
        with round-one argmax reuse, a binding weight cap (masked keys +
        compacted two-hop argmax), and the star-graph stall."""
        grid = PartGraph.from_matrix(grid2d(12, 12), "unit")
        power = PartGraph.from_matrix(rmat(9, 6, seed=3), "nnz")
        yield grid, None
        yield grid, grid.total_weight() * 0.25
        yield power, power.total_weight() * 0.25
        yield power, np.array([3.0])  # binds: exercises the cap-mask path
        yield _star(40), None

    def test_matching_bit_identical(self):
        for g, cap in self._cases():
            out = {
                k: handshake_matching(
                    g, np.random.default_rng(7), max_vertex_weight=cap, kernel=k
                )
                for k in COARSEN_KERNELS
            }
            assert np.array_equal(out["reference"], out["vector"])

    def test_contract_bit_identical(self):
        for g, cap in self._cases():
            match = handshake_matching(
                g, np.random.default_rng(1), max_vertex_weight=cap
            )
            ref_g, ref_c = contract(g, match, kernel="reference")
            vec_g, vec_c = contract(g, match, kernel="vector")
            assert np.array_equal(ref_c, vec_c)
            assert _graphs_equal(ref_g, vec_g)

    def test_coarsen_to_stack_bit_identical(self, small_rmat):
        g = PartGraph.from_matrix(small_rmat, "nnz")
        stacks = {
            k: coarsen_to(g, 50, np.random.default_rng(0), kernel=k)
            for k in COARSEN_KERNELS
        }
        ref, vec = stacks["reference"], stacks["vector"]
        assert len(ref) == len(vec) > 1
        for (gr, cr), (gv, cv) in zip(ref, vec):
            assert _graphs_equal(gr, gv)
            assert (cr is None and cv is None) or np.array_equal(cr, cv)

    def test_contract_falls_back_on_inexact_weights(self, rng):
        """Fractional edge weights void the exact-sum guarantee; the vector
        dispatch must route to the reference kernel, not diverge."""
        W = grid2d(6, 6).astype(np.float64)
        W.data[:] = 0.1  # 0.1 is not exactly representable
        g = PartGraph.from_scipy(W)
        assert not g.exactly_summable_weights()
        match = handshake_matching(g, np.random.default_rng(2))
        ref_g, ref_c = contract(g, match, kernel="reference")
        vec_g, vec_c = contract(g, match, kernel="vector")
        assert np.array_equal(ref_c, vec_c)
        assert _graphs_equal(ref_g, vec_g)

    def test_use_kernel_switches_default(self):
        assert _resolve_kernel(None) == "vector"
        with use_kernel("reference"):
            assert _resolve_kernel(None) == "reference"
        assert _resolve_kernel(None) == "vector"

    def test_unknown_kernel_rejected(self):
        g = PartGraph.from_matrix(grid2d(3, 3), "unit")
        with pytest.raises(ValueError, match="unknown coarsen kernel"):
            handshake_matching(g, np.random.default_rng(0), kernel="bogus")
        with pytest.raises(ValueError, match="unknown coarsen kernel"):
            with use_kernel("bogus"):
                pass  # pragma: no cover


class TestCoarseningStalls:
    """Early-stop paths: a stalled matching must terminate the level loop."""

    def test_min_shrink_early_stop(self):
        """A cap below any pair's combined weight blocks all matching, so
        the first level does not shrink and coarsen_to returns only the
        input graph."""
        g = PartGraph.from_matrix(grid2d(8, 8), "unit")
        levels = coarsen_to(
            g, 4, np.random.default_rng(0), max_weight_fraction=0.02
        )  # cap = 64 * 0.02 = 1.28 < 2
        assert len(levels) == 1
        assert levels[0][0] is g and levels[0][1] is None

    def test_hub_matching_blocked_on_star(self):
        """With nnz weights a star hub exceeds the cap against any leaf;
        two-hop pairing must still collapse the leaves — identically in
        both kernels."""
        nleaves = 33
        r = np.zeros(nleaves, dtype=np.int64)
        c = np.arange(1, nleaves + 1, dtype=np.int64)
        A = from_edges(r, c, (nleaves + 1, nleaves + 1), symmetrize=True)
        g = PartGraph.from_matrix(A, "nnz")  # hub weight 33, leaves 1
        cap = np.array([4.0])
        out = {
            k: handshake_matching(
                g, np.random.default_rng(0), max_vertex_weight=cap, kernel=k
            )
            for k in COARSEN_KERNELS
        }
        assert np.array_equal(out["reference"], out["vector"])
        match = out["vector"]
        _check_matching(g, match)
        assert match[0] == 0  # hub stays single: every pairing busts the cap
        leaves = np.arange(1, nleaves + 1)
        paired = (match[leaves] != leaves).sum()
        assert paired >= nleaves - 1  # odd leaf count: at most one left over
