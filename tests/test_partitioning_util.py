"""Tests for repro.partitioning._util — segment primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioning._util import check_part_vector, segment_argmax, segment_sum


@st.composite
def segments(draw):
    nseg = draw(st.integers(1, 12))
    lens = draw(st.lists(st.integers(0, 8), min_size=nseg, max_size=nseg))
    xadj = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=int(xadj[-1]), max_size=int(xadj[-1])
        )
    )
    return np.array(vals), xadj


class TestSegmentArgmax:
    @given(segments())
    @settings(max_examples=100, deadline=None)
    def test_matches_python_reference(self, data):
        vals, xadj = data
        got = segment_argmax(vals, xadj)
        for i in range(len(xadj) - 1):
            seg = vals[xadj[i]: xadj[i + 1]]
            if len(seg) == 0:
                assert got[i] == -1
            else:
                assert xadj[i] <= got[i] < xadj[i + 1]
                assert vals[got[i]] == seg.max()

    def test_empty_values(self):
        out = segment_argmax(np.array([]), np.array([0, 0, 0]))
        assert out.tolist() == [-1, -1]


class TestSegmentSum:
    @given(segments())
    @settings(max_examples=100, deadline=None)
    def test_matches_python_reference(self, data):
        vals, xadj = data
        got = segment_sum(vals, xadj)
        for i in range(len(xadj) - 1):
            assert np.isclose(got[i], vals[xadj[i]: xadj[i + 1]].sum())


class TestCheckPartVector:
    def test_valid(self):
        p = check_part_vector([0, 1, 2], 3, 3)
        assert p.dtype == np.int64

    def test_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_part_vector([0, 1], 3, 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            check_part_vector([0, 5], 2, 3)
