"""Tests for repro.partitioning._util — segment primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioning._util import (
    check_part_vector,
    gather_csr_slots,
    gather_slices,
    segment_argmax,
    segment_argmax_last,
    segment_sum,
)


@st.composite
def segments(draw):
    nseg = draw(st.integers(1, 12))
    lens = draw(st.lists(st.integers(0, 8), min_size=nseg, max_size=nseg))
    xadj = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=int(xadj[-1]), max_size=int(xadj[-1])
        )
    )
    return np.array(vals), xadj


class TestSegmentArgmax:
    @given(segments())
    @settings(max_examples=100, deadline=None)
    def test_matches_python_reference(self, data):
        vals, xadj = data
        got = segment_argmax(vals, xadj)
        for i in range(len(xadj) - 1):
            seg = vals[xadj[i]: xadj[i + 1]]
            if len(seg) == 0:
                assert got[i] == -1
            else:
                assert xadj[i] <= got[i] < xadj[i + 1]
                assert vals[got[i]] == seg.max()

    def test_empty_values(self):
        out = segment_argmax(np.array([]), np.array([0, 0, 0]))
        assert out.tolist() == [-1, -1]


class TestSegmentArgmaxLast:
    """segment_argmax_last is the reduceat twin of the lexsort argmax; the
    matching kernels' bit-identity rests on the two never disagreeing."""

    @given(segments())
    @settings(max_examples=100, deadline=None)
    def test_identical_to_lexsort_form(self, data):
        vals, xadj = data
        assert np.array_equal(segment_argmax_last(vals, xadj), segment_argmax(vals, xadj))

    def test_ties_resolve_to_last_slot(self):
        vals = np.array([5.0, 7.0, 7.0, 1.0, 1.0])
        xadj = np.array([0, 3, 5])
        got = segment_argmax_last(vals, xadj)
        assert got.tolist() == [2, 4]
        assert np.array_equal(got, segment_argmax(vals, xadj))

    def test_all_neg_inf_segments(self):
        """A fully masked segment still has an argmax (-inf == -inf): the
        last slot — on which callers then apply their validity filter."""
        vals = np.array([-np.inf, -np.inf, 3.0, -np.inf])
        xadj = np.array([0, 2, 2, 4])
        got = segment_argmax_last(vals, xadj)
        assert got.tolist() == [1, -1, 2]
        assert np.array_equal(got, segment_argmax(vals, xadj))

    def test_empty_segments_give_minus_one(self):
        vals = np.array([2.0, 4.0])
        xadj = np.array([0, 0, 2, 2])
        assert segment_argmax_last(vals, xadj).tolist() == [-1, 1, -1]

    def test_empty_values(self):
        out = segment_argmax_last(np.array([]), np.array([0, 0, 0]))
        assert out.tolist() == [-1, -1]


class TestSegmentSum:
    @given(segments())
    @settings(max_examples=100, deadline=None)
    def test_matches_python_reference(self, data):
        vals, xadj = data
        got = segment_sum(vals, xadj)
        for i in range(len(xadj) - 1):
            assert np.isclose(got[i], vals[xadj[i]: xadj[i + 1]].sum())

    def test_empty_segments_give_zero(self):
        vals = np.array([1.0, 2.0, 3.0])
        xadj = np.array([0, 0, 3, 3, 3])
        assert segment_sum(vals, xadj).tolist() == [0.0, 6.0, 0.0, 0.0]

    def test_empty_values(self):
        assert segment_sum(np.array([]), np.array([0, 0])).tolist() == [0.0]


class TestGatherSlices:
    def _csr(self):
        indptr = np.array([0, 2, 2, 5, 6])
        indices = np.array([10, 11, 20, 21, 22, 30])
        return indptr, indices

    def test_matches_concatenation(self):
        indptr, indices = self._csr()
        rows = np.array([2, 0, 2])
        got = gather_slices(indptr, indices, rows)
        expect = np.concatenate(
            [indices[indptr[r]: indptr[r + 1]] for r in rows]
        )
        assert np.array_equal(got, expect)

    def test_single_row(self):
        indptr, indices = self._csr()
        assert gather_slices(indptr, indices, np.array([3])).tolist() == [30]

    def test_empty_rows_and_empty_result(self):
        indptr, indices = self._csr()
        assert len(gather_slices(indptr, indices, np.array([], dtype=np.int64))) == 0
        assert len(gather_slices(indptr, indices, np.array([1]))) == 0


class TestGatherCsrSlots:
    def _csr(self):
        return np.array([0, 2, 2, 5, 6])

    def test_slots_and_subindptr(self):
        indptr = self._csr()
        slots, sub = gather_csr_slots(indptr, np.array([2, 1, 0]))
        assert slots.tolist() == [2, 3, 4, 0, 1]
        assert sub.tolist() == [0, 3, 3, 5]

    def test_single_row(self):
        slots, sub = gather_csr_slots(self._csr(), np.array([3]))
        assert slots.tolist() == [5]
        assert sub.tolist() == [0, 1]

    def test_empty_rows(self):
        slots, sub = gather_csr_slots(self._csr(), np.array([], dtype=np.int64))
        assert len(slots) == 0
        assert sub.tolist() == [0]


class TestCheckPartVector:
    def test_valid(self):
        p = check_part_vector([0, 1, 2], 3, 3)
        assert p.dtype == np.int64

    def test_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_part_vector([0, 1], 3, 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            check_part_vector([0, 5], 2, 3)
