"""Shared fixtures: small deterministic matrices and layouts."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.generators import chung_lu, grid2d, powerlaw_degree_sequence, rmat


@pytest.fixture(scope="session")
def small_rmat() -> sp.csr_matrix:
    """~1k-vertex R-MAT graph: scale-free, hubs at low ids."""
    return rmat(scale=10, edge_factor=8, seed=7)


@pytest.fixture(scope="session")
def small_grid() -> sp.csr_matrix:
    """24x24 mesh: the partitionable contrast case."""
    return grid2d(24, 24)


@pytest.fixture(scope="session")
def small_powerlaw() -> sp.csr_matrix:
    """Chung-Lu graph with gamma=2.3 tail."""
    w = powerlaw_degree_sequence(1500, gamma=2.3, mean_degree=12, max_degree=300, seed=3)
    return chung_lu(w, seed=4)


@pytest.fixture(scope="session")
def tiny_matrix() -> sp.csr_matrix:
    """Hand-written 6x6 symmetric pattern for exactness checks."""
    rows = np.array([0, 0, 1, 2, 3, 4, 1, 5])
    cols = np.array([1, 2, 3, 4, 5, 5, 4, 0])
    A = sp.coo_matrix((np.ones(8), (rows, cols)), shape=(6, 6))
    return sp.csr_matrix(A + A.T)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
