"""Tests for the vectorised refinement kernels and the phase profiler.

The vector FM kernel, the batched hypergraph gain computation and the
vectorised BFS region growers all claim *bit identity* with the scalar
reference implementations they replaced — these tests hold them to it on
scale-free, mesh and degenerate (star, edgeless, disconnected) inputs.
"""

from collections import deque

import numpy as np
import pytest
import scipy.sparse as sp

from repro import perf
from repro.generators import grid2d, rmat
from repro.graphs import from_edges
from repro.partitioning import PartGraph
from repro.partitioning._util import gather_slices
from repro.partitioning.hkway import _greedy_net_growing
from repro.partitioning.hrefine import (
    _compute_gain,
    _compute_gain_many,
    fm_refine_hypergraph,
    hg_balance_allowance,
)
from repro.partitioning.hypergraph import Hypergraph
from repro.partitioning.initial import greedy_graph_growing, random_bisection
from repro.partitioning.refine import (
    FM_KERNELS,
    balance_allowance,
    fm_refine,
    use_kernel,
)


def _star(nleaves: int, vw="nnz") -> PartGraph:
    r = np.zeros(nleaves, dtype=np.int64)
    c = np.arange(1, nleaves + 1, dtype=np.int64)
    A = from_edges(r, c, (nleaves + 1, nleaves + 1), symmetrize=True)
    return PartGraph.from_matrix(A, vw)


class TestKernelIdentity:
    """vector and reference FM kernels replay the same move sequence."""

    @pytest.mark.parametrize("vw", ["nnz", ("unit", "nnz")])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rmat_bit_identical(self, small_rmat, vw, seed):
        g = PartGraph.from_matrix(small_rmat, vertex_weights=vw)
        part0 = (np.random.default_rng(seed).random(g.n) < 0.5).astype(np.int64)
        a = fm_refine(g, part0, kernel="vector")
        b = fm_refine(g, part0, kernel="reference")
        assert np.array_equal(a, b)

    def test_grid_uneven_targets(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part0 = (np.arange(g.n) % 2).astype(np.int64)
        a = fm_refine(g, part0, (0.4, 0.6), 1.02, kernel="vector")
        b = fm_refine(g, part0, (0.4, 0.6), 1.02, kernel="reference")
        assert np.array_equal(a, b)

    def test_star_hub_path(self):
        """A 200-leaf hub exercises the fancy-indexed hub update tier."""
        g = _star(200)
        part0 = (np.arange(g.n) % 2).astype(np.int64)
        a = fm_refine(g, part0, kernel="vector")
        b = fm_refine(g, part0, kernel="reference")
        assert np.array_equal(a, b)

    def test_use_kernel_switches_default(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        part0 = (np.arange(g.n) % 2).astype(np.int64)
        with use_kernel("reference"):
            a = fm_refine(g, part0)
        b = fm_refine(g, part0)  # default (vector) restored on exit
        assert np.array_equal(a, b)

    def test_use_kernel_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown FM kernel"):
            with use_kernel("simd"):
                pass
        with pytest.raises(ValueError, match="unknown FM kernel"):
            fm_refine(_star(4), np.zeros(5, dtype=np.int64), kernel="simd")

    def test_kernel_registry(self):
        assert FM_KERNELS == ("vector", "reference")

    def test_mirror_threshold_paths_identical(self, small_rmat, monkeypatch):
        """Above _MIRROR_SLOTS the vector passes skip the full Python-list
        adjacency mirrors and slice-convert per move; both paths must make
        identical moves."""
        from repro.partitioning import refine

        g = PartGraph.from_matrix(small_rmat, "nnz")
        part0 = (np.random.default_rng(3).random(g.n) < 0.5).astype(np.int64)
        with_mirrors = fm_refine(g, part0, kernel="vector")
        monkeypatch.setattr(refine, "_MIRROR_SLOTS", 1)  # force the big-graph path
        g2 = PartGraph.from_matrix(small_rmat, "nnz")  # fresh memoized state
        without_mirrors = fm_refine(g2, part0, kernel="vector")
        assert np.array_equal(with_mirrors, without_mirrors)


class TestFMRollback:
    """Hill climbing must roll every speculative move back when no prefix
    improves the (balance, cut) key."""

    @pytest.mark.parametrize("kernel", ["vector", "reference"])
    def test_optimal_cycle_bisection_unchanged(self, kernel):
        # even cycle split into two arcs: the 2-edge cut is optimal and
        # balanced, so the pass climbs hills and rolls everything back
        n = 40
        i = np.arange(n)
        A = from_edges(i, (i + 1) % n, (n, n), symmetrize=True)
        g = PartGraph.from_matrix(A, "unit")
        part0 = (i >= n // 2).astype(np.int64)
        refined = fm_refine(g, part0, passes=3, hill_limit=16, kernel=kernel)
        assert np.array_equal(refined, part0)

    @pytest.mark.parametrize("kernel", ["vector", "reference"])
    def test_rollback_restores_partial_prefix(self, kernel):
        # interleaved grid columns: many improving moves exist, the pass
        # keeps climbing past the optimum and must rewind to the best
        # prefix — the result may never be worse than the input on the
        # (balanced, cut) order
        g = PartGraph.from_matrix(grid2d(12, 12), "unit")
        part0 = (np.arange(g.n) % 2).astype(np.int64)
        allow = balance_allowance(g, (0.5, 0.5), 1.05)
        refined = fm_refine(g, part0, passes=1, hill_limit=64, kernel=kernel)
        sw = np.zeros((2, g.ncon))
        np.add.at(sw, refined, g.vwgt)
        assert (sw <= allow + 1e-9).all()
        assert g.edgecut(refined) < g.edgecut(part0)


class TestBalanceAllowanceShared:
    def test_hypergraph_alias(self, small_rmat):
        """hg_balance_allowance is the shared duck-typed helper."""
        assert hg_balance_allowance is balance_allowance
        hg = Hypergraph.from_matrix_column_net(small_rmat, "nnz")
        g = PartGraph.from_matrix(small_rmat, "nnz")
        a = balance_allowance(hg, (0.4, 0.6), 1.03)
        assert a.shape == (2, 1)
        # same rule on both structures: widened by the heaviest vertex
        assert np.array_equal(
            balance_allowance(g, (0.5, 0.5), 1.05),
            np.maximum(
                1.05 * 0.5 * g.total_weight(),
                0.5 * g.total_weight() + g.vwgt.max(axis=0),
            )[None, :].repeat(2, axis=0),
        )


class TestGatherSlices:
    def test_matches_concatenate(self, small_rmat):
        g = PartGraph.from_matrix(small_rmat, "nnz")
        rows = np.array([5, 0, 17, 5, 3], dtype=np.int64)  # dup + unordered
        expect = np.concatenate(
            [g.adjncy[g.xadj[r] : g.xadj[r + 1]] for r in rows]
        )
        assert np.array_equal(gather_slices(g.xadj, g.adjncy, rows), expect)

    def test_empty_rows(self):
        indptr = np.array([0, 0, 2, 2], dtype=np.int64)
        indices = np.array([7, 9], dtype=np.int64)
        out = gather_slices(indptr, indices, np.array([0, 2], dtype=np.int64))
        assert len(out) == 0
        out = gather_slices(indptr, indices, np.array([0, 1, 2], dtype=np.int64))
        assert np.array_equal(out, [7, 9])


def _deque_graph_growing(g, target_frac, rng):
    """The former scalar implementation, kept as the test oracle."""
    n = g.n
    part = np.ones(n, dtype=np.int64)
    target = g.total_weight()[0] * target_frac
    grown = 0.0
    visited = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    oi = 0
    queue: deque[int] = deque()
    while grown < target and oi <= n:
        if not queue:
            while oi < n and visited[order[oi]]:
                oi += 1
            if oi >= n:
                break
            queue.append(int(order[oi]))
            visited[order[oi]] = True
        v = queue.popleft()
        part[v] = 0
        grown += g.vwgt[v, 0]
        for u in g.neighbors(v):
            if not visited[u]:
                visited[u] = True
                queue.append(int(u))
    return part


def _deque_net_growing(hg, target_frac, rng):
    """The former scalar net-BFS, kept as the test oracle."""
    n = hg.n
    part = np.ones(n, dtype=np.int64)
    target = hg.total_weight()[0] * target_frac
    grown = 0.0
    visited = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    oi = 0
    queue: deque[int] = deque()
    while grown < target:
        if not queue:
            while oi < n and visited[order[oi]]:
                oi += 1
            if oi >= n:
                break
            queue.append(int(order[oi]))
            visited[order[oi]] = True
        v = queue.popleft()
        part[v] = 0
        grown += hg.vwgt[v, 0]
        for e in hg.nets_of(v).tolist():
            for u in hg.pins(e).tolist():
                if not visited[u]:
                    visited[u] = True
                    queue.append(u)
    return part


class TestVectorisedGrowing:
    @pytest.mark.parametrize("tf", [0.0, 0.3, 0.5, 1.0])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_graph_growing_matches_deque(self, small_rmat, tf, seed):
        g = PartGraph.from_matrix(small_rmat, "nnz")
        a = _deque_graph_growing(g, tf, np.random.default_rng(seed))
        b = greedy_graph_growing(g, tf, np.random.default_rng(seed))
        assert np.array_equal(a, b)

    def test_graph_growing_disconnected(self):
        A = sp.block_diag([rmat(7, 4, seed=2), grid2d(8, 8)], format="csr")
        g = PartGraph.from_matrix(A, "nnz")
        for seed in range(4):
            a = _deque_graph_growing(g, 0.5, np.random.default_rng(seed))
            b = greedy_graph_growing(g, 0.5, np.random.default_rng(seed))
            assert np.array_equal(a, b)

    def test_graph_growing_edgeless(self):
        g = PartGraph.from_matrix(sp.csr_matrix((30, 30)), "unit")
        a = _deque_graph_growing(g, 0.5, np.random.default_rng(1))
        b = greedy_graph_growing(g, 0.5, np.random.default_rng(1))
        assert np.array_equal(a, b)
        assert (b == 0).sum() == 15

    @pytest.mark.parametrize("tf", [0.2, 0.5, 0.8])
    def test_net_growing_matches_deque(self, small_rmat, tf):
        hg = Hypergraph.from_matrix_column_net(small_rmat, "nnz")
        for seed in range(3):
            a = _deque_net_growing(hg, tf, np.random.default_rng(seed))
            b = _greedy_net_growing(hg, tf, np.random.default_rng(seed))
            assert np.array_equal(a, b)


class TestHypergraphGainBatch:
    def test_compute_gain_many_matches_scalar(self, small_rmat):
        hg = Hypergraph.from_matrix_column_net(small_rmat, "nnz")
        part = (np.random.default_rng(2).random(hg.n) < 0.5).astype(np.int64)
        counts = hg.net_part_counts(part, 2).toarray().astype(np.int64)
        vs = np.random.default_rng(3).choice(hg.n, size=64, replace=False)
        batch = _compute_gain_many(hg, part, counts, vs)
        for v, gb in zip(vs.tolist(), batch):
            assert gb == _compute_gain(hg, part, counts, v)

    def test_compute_gain_many_empty(self, small_rmat):
        hg = Hypergraph.from_matrix_column_net(small_rmat, "nnz")
        part = np.zeros(hg.n, dtype=np.int64)
        counts = hg.net_part_counts(part, 2).toarray().astype(np.int64)
        assert _compute_gain_many(hg, part, counts, np.array([], dtype=np.int64)) == []

    def test_refiner_improves_cut(self, small_rmat):
        hg = Hypergraph.from_matrix_column_net(small_rmat, "nnz")
        part0 = (np.random.default_rng(0).random(hg.n) < 0.5).astype(np.int64)
        refined = fm_refine_hypergraph(hg, part0)
        assert hg.cut_connectivity_minus_one(refined, 2) < hg.cut_connectivity_minus_one(part0, 2)


class TestPhaseProfiler:
    def test_disabled_returns_null(self):
        assert perf.active_profiler() is None
        cm = perf.phase("anything")
        with cm:
            pass  # no-op context manager, no profiler active

    def test_nested_aggregation(self):
        with perf.profile() as prof:
            with perf.phase("outer"):
                for _ in range(3):
                    with perf.phase("inner"):
                        pass
            with perf.phase("outer"):
                pass
        assert prof.stats[("outer",)].calls == 2
        assert prof.stats[("outer", "inner")].calls == 3
        d = prof.as_dict()
        assert d["outer"]["calls"] == 2
        assert d["outer/inner"]["calls"] == 3
        assert prof.total_seconds() == pytest.approx(
            prof.stats[("outer",)].seconds
        )

    def test_report_orders_parent_first(self):
        with perf.profile() as prof:
            with perf.phase("a"):
                with perf.phase("b"):
                    pass
        lines = prof.report().splitlines()
        ia = next(i for i, line in enumerate(lines) if line.startswith("a"))
        ib = next(i for i, line in enumerate(lines) if line.strip().startswith("b"))
        assert ia < ib

    def test_profile_blocks_nest_independently(self):
        with perf.profile() as outer:
            with perf.phase("seen-by-outer"):
                pass
            with perf.profile() as inner:
                with perf.phase("seen-by-inner"):
                    pass
            with perf.phase("also-outer"):
                pass
        assert ("seen-by-inner",) in inner.stats
        assert ("seen-by-inner",) not in outer.stats
        assert ("seen-by-outer",) in outer.stats
        assert ("also-outer",) in outer.stats
        assert perf.active_profiler() is None

    def test_partition_records_pipeline_phases(self, small_rmat):
        from repro.partitioning import partition_matrix

        with perf.profile() as prof:
            partition_matrix(small_rmat, 4, method="gp", seed=0)
        keys = set(prof.as_dict())
        assert {"build-graph", "bisect", "bisect/coarsen",
                "bisect/initial", "bisect/refine"} <= keys

    def test_profiling_does_not_change_results(self, small_rmat):
        from repro.partitioning import partition_matrix

        plain = partition_matrix(small_rmat, 4, method="gp", seed=0).part
        with perf.profile():
            profiled = partition_matrix(small_rmat, 4, method="gp", seed=0).part
        assert np.array_equal(plain, profiled)
