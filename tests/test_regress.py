"""Tests for the golden-invariant regression harness (repro.regress)."""

import json

import pytest

from repro.cli import main
from repro.layouts import make_layout
from repro.regress import (
    SCHEMA_VERSION,
    GridSpec,
    cell_key,
    cell_metrics,
    check_goldens,
    compute_matrix_cells,
    diff_golden_dirs,
    format_mismatches,
    generate_goldens,
    golden_path,
    load_golden,
)
from repro.runtime import CAB, DistSparseMatrix

# rmat_22 is the smallest corpus matrix (~8k rows) and block/random
# layouts need no partitioner, so this grid computes in well under a
# second while still exercising both 1D and 2D plan structure.
TINY_SPEC = GridSpec(
    matrices=("rmat_22",), procs=(4,), methods=("1d-block", "2d-block")
)


@pytest.fixture(scope="module")
def tiny_golden_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("golden")
    generate_goldens(TINY_SPEC, d)
    return d


def _perturb(golden_dir, matrix, mutate):
    payload = load_golden(golden_dir, matrix)
    mutate(payload)
    golden_path(golden_dir, matrix).write_text(json.dumps(payload))


class TestCellMetrics:
    def test_matches_comm_plan_state(self, small_powerlaw):
        lay = make_layout("2d-random", small_powerlaw, 4, seed=0)
        dist = DistSparseMatrix(small_powerlaw, lay, CAB)
        cell = cell_metrics(dist)
        assert cell["nnz"] == small_powerlaw.nnz
        assert cell["expand_volume"] == dist.import_plan.total_volume
        assert cell["fold_messages"] == dist.fold_plan.nmessages
        assert cell["expand_max_sent_messages"] == dist.import_plan.sent_counts().max()
        assert cell["modeled_spmv100_seconds"] == pytest.approx(
            dist.modeled_spmv_seconds(100)
        )

    def test_two_tier_types(self, small_powerlaw):
        """Ints are exact invariants, floats are modeled/ratio metrics."""
        lay = make_layout("1d-block", small_powerlaw, 4)
        cell = cell_metrics(DistSparseMatrix(small_powerlaw, lay, CAB))
        for key, value in cell.items():
            if key.startswith("modeled_") or key.endswith("_imbalance"):
                assert isinstance(value, float), key
            else:
                assert isinstance(value, int), key

    def test_no_spmv_executed(self, small_powerlaw, monkeypatch):
        lay = make_layout("1d-block", small_powerlaw, 4)
        dist = DistSparseMatrix(small_powerlaw, lay, CAB)
        monkeypatch.setattr(
            DistSparseMatrix, "spmv", lambda *a, **k: pytest.fail("spmv ran")
        )
        cell_metrics(dist)

    def test_deterministic(self):
        from repro.generators import load_corpus_matrix

        A = load_corpus_matrix("rmat_22")
        a = compute_matrix_cells(A, TINY_SPEC, "rmat_22")
        b = compute_matrix_cells(A, TINY_SPEC, "rmat_22")
        assert a == b

    def test_plan_invariants_consistent(self, small_powerlaw):
        lay = make_layout("2d-block", small_powerlaw, 4)
        dist = DistSparseMatrix(small_powerlaw, lay, CAB)
        inv = dist.import_plan.invariants()
        assert inv["messages"] == dist.import_plan.nmessages
        assert inv["volume"] == dist.import_plan.total_volume
        assert all(isinstance(v, int) for v in inv.values())


class TestRoundTrip:
    def test_generate_then_check_passes(self, tiny_golden_dir):
        mismatches, ncells = check_goldens(TINY_SPEC, tiny_golden_dir)
        assert mismatches == []
        assert ncells == 2

    def test_golden_file_shape(self, tiny_golden_dir):
        payload = load_golden(tiny_golden_dir, "rmat_22")
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["machine"] == "cab"
        assert set(payload["cells"]) == {"1d-block@p4", "2d-block@p4"}

    def test_missing_golden_reported(self, tmp_path):
        mismatches, _ = check_goldens(TINY_SPEC, tmp_path / "nowhere")
        assert len(mismatches) == 1
        assert "no golden file" in mismatches[0].note


class TestPerturbations:
    def test_integer_drift_caught_with_cell_named(self, tmp_path):
        generate_goldens(TINY_SPEC, tmp_path)
        _perturb(
            tmp_path,
            "rmat_22",
            lambda p: p["cells"]["2d-block@p4"].__setitem__(
                "expand_messages", p["cells"]["2d-block@p4"]["expand_messages"] + 1
            ),
        )
        mismatches, _ = check_goldens(TINY_SPEC, tmp_path)
        assert len(mismatches) == 1
        m = mismatches[0]
        assert m.matrix == "rmat_22"
        assert (m.cell, m.metric) == ("2d-block@p4", "expand_messages")
        assert "drifted by -1" in m.note  # current relative to (perturbed) golden
        report = format_mismatches(mismatches)
        assert "2d-block@p4" in report and "expand_messages" in report

    def test_float_within_rtol_passes(self, tmp_path):
        generate_goldens(TINY_SPEC, tmp_path)
        _perturb(
            tmp_path,
            "rmat_22",
            lambda p: p["cells"]["1d-block@p4"].__setitem__(
                "modeled_spmv100_seconds",
                p["cells"]["1d-block@p4"]["modeled_spmv100_seconds"] * (1 + 1e-12),
            ),
        )
        mismatches, _ = check_goldens(TINY_SPEC, tmp_path)
        assert mismatches == []

    def test_float_beyond_rtol_fails(self, tmp_path):
        generate_goldens(TINY_SPEC, tmp_path)
        _perturb(
            tmp_path,
            "rmat_22",
            lambda p: p["cells"]["1d-block@p4"].__setitem__(
                "modeled_spmv100_seconds",
                p["cells"]["1d-block@p4"]["modeled_spmv100_seconds"] * 1.01,
            ),
        )
        mismatches, _ = check_goldens(TINY_SPEC, tmp_path)
        assert len(mismatches) == 1
        assert "rtol" in mismatches[0].note

    def test_missing_cell_and_extra_metric(self, tmp_path):
        generate_goldens(TINY_SPEC, tmp_path)

        def mutate(p):
            del p["cells"]["1d-block@p4"]
            del p["cells"]["2d-block@p4"]["fold_volume"]

        _perturb(tmp_path, "rmat_22", mutate)
        mismatches, _ = check_goldens(TINY_SPEC, tmp_path)
        notes = sorted(m.note for m in mismatches)
        assert any("no golden entry" in n for n in notes)
        assert any("absent from golden" in n for n in notes)

    def test_schema_bump_forces_regeneration(self, tmp_path):
        generate_goldens(TINY_SPEC, tmp_path)
        _perturb(tmp_path, "rmat_22", lambda p: p.__setitem__("schema", 999))
        mismatches, _ = check_goldens(TINY_SPEC, tmp_path)
        assert len(mismatches) == 1
        assert "schema" in mismatches[0].note

    def test_spec_header_mismatch_reported(self, tmp_path):
        generate_goldens(TINY_SPEC, tmp_path)
        _perturb(tmp_path, "rmat_22", lambda p: p.__setitem__("seed", 7))
        mismatches, _ = check_goldens(TINY_SPEC, tmp_path)
        assert any(m.metric == "seed" for m in mismatches)


class TestDiffDirs:
    def test_identical_trees_no_differences(self, tiny_golden_dir):
        assert diff_golden_dirs(tiny_golden_dir, tiny_golden_dir) == []

    def test_reports_any_drift_exactly(self, tiny_golden_dir, tmp_path):
        generate_goldens(TINY_SPEC, tmp_path)
        _perturb(
            tmp_path,
            "rmat_22",
            lambda p: p["cells"]["1d-block@p4"].__setitem__(
                "modeled_sum_seconds",
                p["cells"]["1d-block@p4"]["modeled_sum_seconds"] + 1e-15,
            ),
        )
        mismatches = diff_golden_dirs(tiny_golden_dir, tmp_path)
        assert [m.metric for m in mismatches] == ["modeled_sum_seconds"]

    def test_one_sided_file(self, tiny_golden_dir, tmp_path):
        mismatches = diff_golden_dirs(tiny_golden_dir, tmp_path)
        assert len(mismatches) == 1
        assert "only in one tree" in mismatches[0].note


class TestCli:
    ARGS = ["--matrices", "rmat_22", "--procs", "4"]

    def _patch_methods(self, monkeypatch):
        # route the CLI's GridSpec through the tiny two-method grid
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod, "_regress_spec", lambda args: TINY_SPEC, raising=True
        )

    def test_generate_check_roundtrip(self, tmp_path, monkeypatch, capsys):
        self._patch_methods(monkeypatch)
        gdir = str(tmp_path / "golden")
        assert main(["regress", "generate", "--golden-dir", gdir, *self.ARGS]) == 0
        assert main(["regress", "check", "--golden-dir", gdir, *self.ARGS]) == 0
        assert "regress check OK" in capsys.readouterr().out

    def test_check_fails_with_named_cell_and_report(
        self, tmp_path, monkeypatch, capsys
    ):
        self._patch_methods(monkeypatch)
        gdir = tmp_path / "golden"
        assert main(["regress", "generate", "--golden-dir", str(gdir), *self.ARGS]) == 0
        _perturb(
            gdir,
            "rmat_22",
            lambda p: p["cells"]["2d-block@p4"].__setitem__(
                "max_messages", p["cells"]["2d-block@p4"]["max_messages"] + 1
            ),
        )
        report = tmp_path / "diff.txt"
        rc = main([
            "regress", "check", "--golden-dir", str(gdir),
            "--report", str(report), *self.ARGS,
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "regress check FAILED" in out
        assert "2d-block@p4" in out
        assert "2d-block@p4" in report.read_text()

    def test_diff_subcommand(self, tmp_path, monkeypatch, capsys):
        self._patch_methods(monkeypatch)
        a, b = tmp_path / "a", tmp_path / "b"
        generate_goldens(TINY_SPEC, a)
        generate_goldens(TINY_SPEC, b)
        assert main(["regress", "diff", str(a), str(b)]) == 0
        _perturb(b, "rmat_22", lambda p: p.__setitem__("seed", 3))
        assert main(["regress", "diff", str(a), str(b)]) == 1
        assert "header" in capsys.readouterr().out

    def test_non_corpus_matrix_rejected(self):
        with pytest.raises(SystemExit, match="not a corpus matrix"):
            main(["regress", "check", "--matrices", "no-such-matrix"])


class TestGridSpec:
    def test_default_spec_covers_corpus(self):
        from repro.generators import corpus_names
        from repro.regress import DEFAULT_SPEC

        assert DEFAULT_SPEC.matrices == tuple(corpus_names())
        assert DEFAULT_SPEC.procs == (4, 16, 64)
        assert DEFAULT_SPEC.methods_for("com-orkut") == [
            "1d-block", "1d-random", "1d-gp", "2d-block", "2d-random", "2d-gp",
        ]
        assert "2d-hp" in DEFAULT_SPEC.methods_for("rmat_24")

    def test_bad_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            GridSpec(matrices=("rmat_22",), machine="cray-1")

    def test_cell_key_is_stable(self):
        assert cell_key("2D-GP", 64) == "2d-gp@p64"


def test_checked_in_goldens_are_current_schema():
    """Every golden shipped in tests/golden/ parses and matches the schema."""
    from pathlib import Path

    golden_dir = Path(__file__).parent / "golden"
    files = sorted(golden_dir.glob("*.json"))
    assert files, "tests/golden/ is empty — run `python -m repro regress generate`"
    for path in files:
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION, path.name
        assert payload["matrix"] == path.stem
        assert payload["cells"], path.name
        for key, cell in payload["cells"].items():
            assert "@p" in key
            assert {"nnz", "max_messages", "expand_volume",
                    "modeled_spmv100_seconds"} <= set(cell), (path.name, key)
