"""End-to-end integration tests: the paper's qualitative claims, miniature.

These are the "does the reproduction reproduce" tests — each asserts one of
the paper's headline findings on a small instance the suite can afford.

A scaling caveat, documented in EXPERIMENTS.md: our proxies run with ~16x
fewer rows per process than the paper's instances, which makes pure R-MAT
graphs (near-zero exploitable structure at 64 rows/part) the hardest case
— there 2D-GP ties 2D-Random within a few percent rather than strictly
winning every cell. On the structured scale-free graphs that make up most
of the corpus (social, web, BTER), the strict ordering holds.
"""

import pytest

from repro.bench import performance_profile, fraction_best, run_spmv_cell, spmv_grid
from repro.bench.eigen import eigen_grid
from repro.generators import rmat, webgraph
from repro.graphs import normalized_laplacian
from repro.layouts import make_layout
from repro.runtime import CAB, DistSparseMatrix
from repro.solvers import solve_profile, modeled_solve_seconds

METHODS6 = ["1d-block", "1d-random", "1d-gp", "2d-block", "2d-random", "2d-gp"]


@pytest.fixture(scope="module")
def structured_graph():
    """Scale-free graph with community/host structure (the common case).

    Sized so that p=64 still has ~300 rows per process — small p relative
    to n is what lets 2D keep scaling where 1D stops (a tiny matrix hits
    the latency floor for every layout and the scaling claim is vacuous).
    """
    return webgraph(20000, mean_degree=14, intra_fraction=0.85, seed=2)


@pytest.fixture(scope="module")
def medium_rmat():
    return rmat(scale=12, edge_factor=8, seed=3)


@pytest.fixture(scope="module")
def sweep(structured_graph):
    # deterministic input -> safe to use the persistent partition cache,
    # which makes repeated test runs fast
    return spmv_grid({"web": structured_graph}, METHODS6, procs=(4, 16, 64))


class TestPaperClaims:
    def test_2d_gp_wins_at_scale(self, sweep):
        """Claim: 2D-GP/HP produces the fastest SpMV at large p."""
        for p in (16, 64):
            at_p = {r.method: r.time100 for r in sweep if r.nprocs == p}
            assert at_p["2D-GP"] == min(at_p.values())

    def test_1d_loses_scaling_2d_keeps_it(self, sweep):
        """Claim (Fig 5): above some p, 1D times rise while 2D still falls."""
        def series(method):
            return [r.time100 for r in sorted(
                (r for r in sweep if r.method == method), key=lambda r: r.nprocs)]

        oned = series("1D-Block")
        twod = series("2D-GP")
        assert twod[2] < twod[1] < twod[0]  # 2D scaling through p=64
        assert oned[2] > oned[1]  # 1D turned upward
        assert oned[2] / twod[2] > 2.0  # 1D clearly behind at max p

    def test_message_counts_explain_it(self, sweep):
        """Claim (Table 3): 1D msgs -> p-1, 2D msgs <= pr+pc-2."""
        for r in sweep:
            if r.nprocs != 64:
                continue
            if r.method.startswith("1D"):
                assert r.stats.max_messages > 30  # approaches p-1 = 63
            else:
                assert r.stats.max_messages <= 14  # 8+8-2

    def test_gp_reduces_volume_vs_random(self, sweep):
        """Claim: partitioning exploits structure even on scale-free graphs."""
        for p in (16, 64):
            cv = {r.method: r.stats.total_comm_volume for r in sweep if r.nprocs == p}
            assert cv["1D-GP"] < cv["1D-Random"]
            assert cv["2D-GP"] < cv["2D-Random"]

    def test_profile_2dgp_best_fraction(self, sweep):
        prof = performance_profile(sweep)
        assert fraction_best(prof, "2D-GP") > 0.6
        assert fraction_best(prof, "2D-GP", tol=1.05) == 1.0  # within 5% always

    def test_rmat_worst_case_still_competitive(self, medium_rmat, tmp_path):
        """On structureless R-MAT at harsh rows-per-process ratios, 2D-GP
        must stay within a few percent of the best method (the paper's one
        negative cell, uk-2005@64, was -5.9%)."""
        times = {}
        for m in ("2d-gp", "2d-random", "2d-block"):
            times[m] = run_spmv_cell(medium_rmat, "rmat", m, 64, cache_dir=tmp_path).time100
        assert times["2d-gp"] <= 1.06 * min(times.values())


class TestWebgraphClaims:
    def test_randomization_hurts_local_graphs(self, structured_graph, tmp_path):
        """Claim (wb-edu): on graphs with locality, 1D-Random's extra volume
        outweighs its balance gain vs 1D-Block."""
        blk = run_spmv_cell(structured_graph, "web", "1d-block", 16, cache_dir=tmp_path)
        rnd = run_spmv_cell(structured_graph, "web", "1d-random", 16, cache_dir=tmp_path)
        assert rnd.stats.total_comm_volume > 1.3 * blk.stats.total_comm_volume

    def test_gp_exploits_web_structure(self, structured_graph, tmp_path):
        gp = run_spmv_cell(structured_graph, "web", "1d-gp", 16, cache_dir=tmp_path)
        rnd = run_spmv_cell(structured_graph, "web", "1d-random", 16, cache_dir=tmp_path)
        assert gp.stats.total_comm_volume < 0.7 * rnd.stats.total_comm_volume
        assert gp.time100 < rnd.time100


class TestEigenClaims:
    def test_intro_claim_spmv_dominates_and_layout_fixes_it(self, medium_rmat):
        """Intro: '1D-block at p: SpMV 95% of solve; layout change cut SpMV
        69% and solve 64%'. At proxy scale the same structure appears at
        p=64 with slightly softer numbers."""
        Lhat = normalized_laplacian(medium_rmat)
        prof = solve_profile(Lhat, k=10, tol=1e-3, seed=0)
        blk = DistSparseMatrix(Lhat, make_layout("1d-block", medium_rmat, 64), CAB)
        total_blk, spmv_blk = modeled_solve_seconds(prof, blk)
        assert spmv_blk / total_blk > 0.7  # SpMV dominates 1D-Block solves

        gpmc = DistSparseMatrix(Lhat, make_layout("2d-gp-mc", medium_rmat, 64, seed=0), CAB)
        total_gp, spmv_gp = modeled_solve_seconds(prof, gpmc)
        assert spmv_gp < 0.4 * spmv_blk  # SpMV time cut hard
        assert total_gp < 0.5 * total_blk  # solve time cut hard

    def test_table5_mechanism_vector_imbalance(self, medium_rmat, tmp_path):
        """Table 5: nnz-balanced 2D-GP leaves vectors imbalanced; the MC
        variant balances both and wins the total solve time."""
        Lhat = normalized_laplacian(medium_rmat)
        prof = solve_profile(Lhat, k=10, tol=1e-3, seed=0)
        results = {}
        for m in ("2d-gp", "2d-gp-mc"):
            lay = make_layout(m, medium_rmat, 16, seed=0)
            dist = DistSparseMatrix(Lhat, lay, CAB)
            results[m] = (modeled_solve_seconds(prof, dist)[0], dist.vector_map.imbalance())
        assert results["2d-gp"][1] > 2.0  # plain GP: vectors imbalanced
        assert results["2d-gp-mc"][1] < 1.3  # MC: balanced
        assert results["2d-gp-mc"][0] < results["2d-gp"][0]  # and faster

    def test_eigen_grid_smoke(self, tmp_path):
        recs = eigen_grid(
            ["rmat_22"], ["1d-block", "2d-gp-mc"], procs=(4, 16), k=4, tol=1e-2,
            nstarts=1, cache_dir=tmp_path,
        )
        assert len(recs) == 4
        for r in recs:
            assert r.solve_time >= r.spmv_time > 0
        at16 = {r.method: r.solve_time for r in recs if r.nprocs == 16}
        assert at16["2D-GP-MC"] < at16["1D-Block"]
