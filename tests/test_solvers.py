"""Tests for the distributed solvers: Lanczos, Krylov-Schur, power/PageRank."""

import numpy as np
import pytest
import scipy.sparse.linalg as sla

from repro.graphs import normalized_laplacian
from repro.layouts import make_layout
from repro.runtime import CAB, DistSparseMatrix
from repro.solvers import (
    DistOperator,
    eigsh_dist,
    lanczos_eigsh,
    lanczos_factorization,
    normalized_laplacian_operator,
    pagerank,
    power_method,
)


def _operator(A, method="2d-random", p=4, seed=0):
    lay = make_layout(method, A, p, seed=seed)
    return DistOperator(DistSparseMatrix(A, lay, CAB))


class TestLanczosFactorization:
    def test_arnoldi_relation(self, small_powerlaw):
        op = _operator(small_powerlaw)
        rng = np.random.default_rng(0)
        m = 15
        V, H = lanczos_factorization(op, rng.standard_normal(op.n), m, seed=1)
        # A V_m = V_{m+1} H[: m+1, : m]
        AV = small_powerlaw @ V[:, :m]
        assert np.abs(AV - V @ H[:, :m]).max() < 1e-8

    def test_orthonormal_basis(self, small_powerlaw):
        op = _operator(small_powerlaw)
        V, _ = lanczos_factorization(op, np.ones(op.n), 12, seed=1)
        G = V.T @ V
        assert np.abs(G - np.eye(G.shape[0])).max() < 1e-10

    def test_projection_symmetric(self, small_grid):
        op = _operator(small_grid)
        _, H = lanczos_factorization(op, np.ones(op.n), 10)
        Hm = H[:10, :10]
        assert np.abs(Hm - Hm.T).max() < 1e-8

    def test_validation(self, small_grid):
        op = _operator(small_grid)
        with pytest.raises(ValueError, match="m"):
            lanczos_factorization(op, np.ones(op.n), 0)
        with pytest.raises(ValueError, match="nonzero"):
            lanczos_factorization(op, np.zeros(op.n), 5)

    def test_oneshot_eigsh_on_easy_spectrum(self, small_powerlaw):
        # a scale-free adjacency has a well-separated dominant eigenvalue,
        # which one-shot Lanczos nails; clustered spectra need restarts
        op = _operator(small_powerlaw)
        res = lanczos_eigsh(op, k=3, m=60, seed=2)
        ref = np.sort(
            sla.eigsh(small_powerlaw, k=3, which="LA", return_eigenvectors=False)
        )[::-1]
        assert abs(res.eigenvalues[0] - ref[0]) < 1e-8
        assert np.abs(res.eigenvalues - ref).max() < 1e-3


class TestKrylovSchur:
    @pytest.mark.parametrize("which", ["LA", "SA", "LM"])
    def test_matches_scipy(self, small_powerlaw, which):
        Lhat = normalized_laplacian(small_powerlaw)
        op = _operator(Lhat, p=4)
        res = eigsh_dist(op, k=6, tol=1e-8, which=which, seed=3)
        assert res.converged
        scipy_which = {"LA": "LA", "SA": "SA", "LM": "LM"}[which]
        ref = sla.eigsh(Lhat, k=6, which=scipy_which, return_eigenvectors=False)
        order = np.argsort(ref)[::-1] if which in ("LA", "LM") else np.argsort(ref)
        if which == "LM":
            order = np.argsort(np.abs(ref))[::-1]
        assert np.abs(np.sort(res.eigenvalues) - np.sort(ref[order])).max() < 1e-6

    def test_eigenvectors_residual(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        op = _operator(Lhat)
        res = eigsh_dist(op, k=4, tol=1e-8, seed=1)
        for i in range(4):
            v = res.eigenvectors[:, i]
            r = Lhat @ v - res.eigenvalues[i] * v
            assert np.linalg.norm(r) < 1e-6

    def test_paper_configuration_runs(self, small_rmat):
        """k=10, tol=1e-3, largest of L_hat — the exact paper setting."""
        op = normalized_laplacian_operator(small_rmat, make_layout("2d-gp", small_rmat, 4, seed=0))
        res = eigsh_dist(op, k=10, tol=1e-3, which="LA", seed=5)
        assert res.converged
        assert len(res.eigenvalues) == 10
        assert op.ledger.spmv_total() > 0
        assert op.ledger.get("vector-ops") > 0

    def test_ledger_accumulates_per_matvec(self, small_grid):
        op = _operator(small_grid)
        res = eigsh_dist(op, k=2, tol=1e-6, seed=0)
        per_spmv = op.dist.modeled_spmv_seconds(1)
        assert np.isclose(op.ledger.spmv_total(), res.matvecs * per_spmv)

    def test_validation(self, small_grid):
        op = _operator(small_grid)
        with pytest.raises(ValueError, match="k must"):
            eigsh_dist(op, k=0)
        with pytest.raises(ValueError, match="which"):
            eigsh_dist(op, k=2, which="XX")

    def test_nonconvergence_flagged(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        op = _operator(Lhat)
        res = eigsh_dist(op, k=4, tol=1e-14, max_restarts=1, seed=0)
        assert not res.converged


class TestPower:
    def test_power_method_dominant_pair(self, small_powerlaw):
        # note: must be non-bipartite — on a bipartite graph (e.g. a grid)
        # the +/-lambda eigenvalue pair makes the power method oscillate
        lay = make_layout("2d-block", small_powerlaw, 4)
        res = power_method(small_powerlaw, lay, tol=1e-9, max_iter=5000, seed=1)
        ref = sla.eigsh(small_powerlaw, k=1, which="LA", return_eigenvectors=False)[0]
        assert res.converged
        assert abs(res.eigenvalue - ref) < 1e-5

    def test_pagerank_is_stationary_and_stochastic(self, small_rmat):
        lay = make_layout("1d-random", small_rmat, 4, seed=1)
        res = pagerank(small_rmat, lay, damping=0.85, tol=1e-12)
        assert res.converged
        assert np.isclose(res.scores.sum(), 1.0)
        assert (res.scores > 0).all()
        # stationarity: one more iteration moves nothing
        from repro.solvers.power import google_link_matrix

        M, dangling = google_link_matrix(small_rmat)
        y = 0.85 * (M @ res.scores)
        y += (0.85 * res.scores[dangling].sum() + 0.15) / small_rmat.shape[0]
        assert np.abs(y - res.scores).max() < 1e-10

    def test_pagerank_matches_networkx(self, small_powerlaw):
        nx = pytest.importorskip("networkx")
        lay = make_layout("1d-block", small_powerlaw, 2)
        res = pagerank(small_powerlaw, lay, damping=0.85, tol=1e-12)
        G = nx.from_scipy_sparse_array(small_powerlaw)
        ref = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=500)
        ref_vec = np.array([ref[i] for i in range(small_powerlaw.shape[0])])
        assert np.abs(res.scores - ref_vec).max() < 1e-6

    def test_pagerank_validation(self, small_rmat):
        lay = make_layout("1d-block", small_rmat, 2)
        with pytest.raises(ValueError, match="damping"):
            pagerank(small_rmat, lay, damping=1.5)
